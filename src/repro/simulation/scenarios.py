"""Vectorized adversarial scenario engine: batch attack simulation as tensors.

The batch engine (:mod:`repro.simulation.batch`) vectorizes the *passive*
oracle path — per-round success counts, convergence opportunities, Lemma 1
margins — but every adversarial strategy (withholding, selfish mining,
maximum delay) still runs one trial at a time through the object-based
:class:`~repro.simulation.protocol.NakamotoSimulation` loop.  This module
closes that gap: it executes ``T`` independent *adversarial* trials
simultaneously, scanning over rounds once while every piece of attack state
lives in ``(trials,)`` NumPy vectors —

* the public longest-chain height (with the Δ-capped honest delivery
  pipeline kept as a ring buffer of scheduled arrival heights),
* the adversary's private-fork height, fork-point height and pending-release
  (withheld) block counts,
* cumulative release / abandon / fork-depth / orphaned-block tallies.

The scan reproduces the legacy round phases *exactly*: start-of-round
deliveries, honest mining on the delivered public chain, sequential
adversarial mining on the strategy's parent, the strategy's release decision
against the pre-release public height, and the end-of-round delivery of
zero-delay broadcasts.  One modelling convention makes the two engines
bit-comparable rather than merely equal in distribution: honest block
attribution is *scripted* by :func:`rotating_honest_attribution`, a rotating
assignment of miner ids under which no honest miner ever mines again while
its previous block is still in flight — so every honest block mined in round
``r`` sits at exactly ``public_height(r) + 1`` in both engines.  (The event
this convention excludes — the same miner succeeding twice within one delay
window — has probability ``O(alpha^2 Δ / (mu n))`` per round and vanishes in
the paper's large-``n`` regime; the engine refuses, with
:class:`~repro.errors.SimulationError`, any trace where the convention is
infeasible.)  The seeded equivalence tests replay the engine's pre-drawn
traces through :class:`NakamotoSimulation` via
:class:`~repro.simulation.oracle.ScriptedMiningOracle` and require identical
per-round public/private heights, release rounds and fork-depth tallies for
every registered strategy.

Scenarios are named, registered descriptions of an adversary —
``passive``, ``max_delay``, ``private_chain`` and ``selfish_mining`` ship by
default — and every :class:`Scenario` can also build the corresponding
legacy :class:`~repro.simulation.adversary.AdversaryStrategy`, which stays
the reference implementation.

Partial partitions and the two-component scan
---------------------------------------------
A :class:`~repro.simulation.dynamics.PartitionScenario` with a
``cut_fraction`` splits the honest network in two for the scheduled window:
a minority component holding that fraction of the honest mining power and
the majority complement.  The engine then generalizes the scan to *two*
public chains — per-component heights, delivery rings and pending-release
rings — forked from the common prefix frozen at the cut round.  Honest
successes are allocated binomially between the components (the ``split``
tensor, drawn after the honest and adversarial tensors), each component
runs the legacy constant-Δ delivery pipeline internally, and nothing
crosses the cut until the heal.  At the merge round the higher chain wins
and the displaced depth of the losing component — its height above the
common prefix — is tallied (``merge_depths``, also folded into
``deepest_forks``): the majority/minority race the aggregate scan silently
mispriced.  Conventions, shared bit-exactly with the pure-Python
:func:`reference_partition_scan`: the common prefix does not advance on
honest mining inside the window (pre-cut in-flight blocks deliver to both
sides but the last-Δ suffix is adversarially unconverged, the worst case);
reconciliation at the heal is instantaneous; a window still open when the
run ends is flushed without a merge tally, exactly like an in-flight
release.

The ``equivocation`` kind rides on that scan: outside the window it is the
``private_chain`` state machine, and inside it the adversary maintains one
private chain *per component* — duplicated at the cut, extended by feeding
each round's blocks to the weaker race, released to its own component
only (through the :class:`~repro.simulation.dynamics.AdversaryPlacement`
gossip path when one is wired), so the components are kept on conflicting
chains and the heal itself displaces a suffix.  At the merge the chain
racing the winning component survives as the single private chain.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend import Workspace, get_backend, get_dtype_policy
from ..core.concat_chain import convergence_opportunity_mask
from ..errors import SimulationError
from ..observability import METRICS as _METRICS, TRACE as _TRACE
from ..params import ProtocolParameters
from .adversary import (
    AdversaryStrategy,
    EquivocationAdversary,
    MaxDelayAdversary,
    PassiveAdversary,
    PrivateChainAdversary,
    SelfishMiningAdversary,
)
from .batch import (
    DRAW_MODES,
    _confidence_interval,
    _opportunity_mask_ws,
    draw_mining_traces,
    proportion_confidence_interval,
    worst_window_deficits,
)
from .rng import SeedLike, resolve_rng
from .topology import (
    DelayModel,
    MiningPowerProfile,
    convergence_opportunity_mask_with_delays,
    resolve_delay_model,
)

__all__ = [
    "SCENARIO_KINDS",
    "Scenario",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "rotating_honest_attribution",
    "reference_partition_scan",
    "ScenarioResult",
    "ScenarioSimulation",
]

#: The adversary state machines the engine knows how to vectorize.
SCENARIO_KINDS = ("publish", "private_chain", "selfish_mining", "equivocation")

#: Kinds the two-component partition scan can price (the withholding state
#: machines; ``publish`` scenarios have no private chain to race per side).
PARTITION_KINDS = ("private_chain", "selfish_mining", "equivocation")


@dataclass(frozen=True)
class Scenario:
    """A named, declarative description of one adversarial strategy.

    Parameters
    ----------
    name:
        Registry / cache-key identifier.
    kind:
        The adversary state machine: ``"publish"`` (mine on the public tip,
        publish every block immediately — the passive and maximum-delay
        adversaries), ``"private_chain"`` (the PSS Remark 8.5 withholding
        attack), ``"selfish_mining"`` (Eyal-Sirer adapted to the round
        model) or ``"equivocation"`` (one private chain per partition
        component, released to its own side only — meaningful solely on a
        partial-cut :class:`~repro.simulation.dynamics.PartitionScenario`,
        where the engine runs the two-component scan).
    honest_delay:
        The delay (in rounds, capped by Δ) the adversary imposes on every
        honest block.  ``None`` means the full Δ; ``publish`` scenarios may
        choose any value in ``[0, Δ]``, while the two withholding kinds
        always delay by Δ (their legacy reference strategies hard-code it).
    target_depth:
        ``private_chain`` / ``equivocation``: the minimum public-suffix
        depth a release must displace (the ``T`` whose consistency the
        attack breaks; per component for ``equivocation``).
    give_up_deficit:
        ``private_chain`` / ``equivocation``: abandon the fork once it
        falls this many blocks behind the public chain it races; ``None``
        never gives up.
    """

    name: str
    kind: str
    honest_delay: Optional[int] = None
    target_depth: int = 6
    give_up_deficit: Optional[int] = 12

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("scenario name must be non-empty")
        if self.kind not in SCENARIO_KINDS:
            raise SimulationError(
                f"scenario kind must be one of {SCENARIO_KINDS}, got {self.kind!r}"
            )
        if self.honest_delay is not None and self.honest_delay < 0:
            raise SimulationError(
                f"honest_delay must be >= 0 or None, got {self.honest_delay!r}"
            )
        if self.kind != "publish" and self.honest_delay is not None:
            raise SimulationError(
                f"{self.kind} scenarios always impose the full delay Delta; "
                "leave honest_delay as None"
            )
        if self.target_depth < 1:
            raise SimulationError(
                f"target_depth must be >= 1, got {self.target_depth!r}"
            )
        if self.give_up_deficit is not None and self.give_up_deficit < 1:
            raise SimulationError(
                f"give_up_deficit must be >= 1 or None, got {self.give_up_deficit!r}"
            )

    # ------------------------------------------------------------------
    # Resolution against a concrete parameter point
    # ------------------------------------------------------------------
    def resolved_honest_delay(self, delta: int) -> int:
        """The per-block honest delay for a run with cap ``delta``.

        Raises :class:`SimulationError` when the scenario demands a delay
        beyond the Δ cap — the same guarantee
        :class:`~repro.simulation.network.DeltaDelayNetwork` enforces.
        """
        delay = delta if self.honest_delay is None else self.honest_delay
        if not (0 <= delay <= delta):
            raise SimulationError(
                f"scenario {self.name!r} imposes delay {delay} beyond the "
                f"Delta cap {delta}"
            )
        return delay

    def build_adversary(self, delta: int) -> AdversaryStrategy:
        """The legacy reference :class:`AdversaryStrategy` for this scenario."""
        if self.kind == "publish":
            delay = self.resolved_honest_delay(delta)
            if delay == delta:
                return MaxDelayAdversary(delta)
            return PassiveAdversary(delta, honest_delay=delay)
        if self.kind == "private_chain":
            return PrivateChainAdversary(
                delta,
                target_depth=self.target_depth,
                give_up_deficit=self.give_up_deficit,
            )
        if self.kind == "equivocation":
            # The legacy engine has no network components, so the reference
            # strategy is the merged-network projection: plain withholding.
            return EquivocationAdversary(
                delta,
                target_depth=self.target_depth,
                give_up_deficit=self.give_up_deficit,
            )
        return SelfishMiningAdversary(delta)

    @property
    def success_depth(self) -> int:
        """The fork depth that counts as a successful attack for this scenario."""
        if self.kind in ("private_chain", "equivocation"):
            return self.target_depth
        return 1

    def payload(self) -> Dict[str, object]:
        """Primary fields as a plain dict (cache keys / reconstruction)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "honest_delay": self.honest_delay,
            "target_depth": self.target_depth,
            "give_up_deficit": self.give_up_deficit,
        }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, overwrite: bool = False) -> Scenario:
    """Add a scenario to the registry (refusing silent redefinition)."""
    if scenario.name in _REGISTRY and not overwrite:
        raise SimulationError(
            f"scenario {scenario.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(scenario: Union[str, Scenario]) -> Scenario:
    """Resolve a registry name (or pass a :class:`Scenario` through)."""
    if isinstance(scenario, Scenario):
        return scenario
    try:
        return _REGISTRY[scenario]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise SimulationError(
            f"unknown scenario {scenario!r}; registered scenarios: {known}"
        ) from None


def list_scenarios() -> List[str]:
    """Names of all registered scenarios, sorted."""
    return sorted(_REGISTRY)


register_scenario(Scenario(name="passive", kind="publish", honest_delay=0))
register_scenario(Scenario(name="max_delay", kind="publish"))
register_scenario(Scenario(name="private_chain", kind="private_chain"))
register_scenario(Scenario(name="selfish_mining", kind="selfish_mining"))


# ----------------------------------------------------------------------
# Scripted honest attribution
# ----------------------------------------------------------------------
def _max_window_successes(
    honest_counts, window: int, backend=None, policy=None
) -> int:
    """Largest number of honest successes in any ``window`` consecutive rounds."""
    xp = get_backend(backend)
    index_dtype = get_dtype_policy(policy).index_dtype(xp)
    counts = xp.asarray(honest_counts, dtype=index_dtype)
    if counts.ndim == 1:
        counts = counts[None, :]
    if counts.size == 0:
        return 0
    if window <= 1:
        return int(counts.max())
    padded = xp.pad(counts, ((0, 0), (0, window - 1)))
    cumulative = xp.concatenate(
        [
            xp.zeros((padded.shape[0], 1), dtype=index_dtype),
            xp.cumsum(padded, axis=1, dtype=index_dtype),
        ],
        axis=1,
    )
    windows = cumulative[:, window:] - cumulative[:, :-window]
    return int(windows.max())


def _require_attribution_feasible(
    honest_counts, honest_miners: int, honest_delay: int, backend=None, policy=None
) -> None:
    """Raise unless rotating attribution avoids in-flight re-selection.

    A miner that mined in round ``r`` receives its own block back at the
    start of round ``r + d`` (``d`` = honest delay); rotating ids re-select
    it inside that window only when some ``d``-round span holds more than
    ``honest_miners`` successes.
    """
    window = max(honest_delay, 1)
    worst = _max_window_successes(honest_counts, window, backend, policy)
    if worst > honest_miners:
        raise SimulationError(
            f"cannot attribute {worst} honest successes within a "
            f"{window}-round delivery window to {honest_miners} distinct "
            "miners; increase n or shorten the delay"
        )


def rotating_honest_attribution(
    honest_counts: Sequence[int], honest_miners: int, honest_delay: int
) -> List[np.ndarray]:
    """Per-round honest miner ids under the engine's rotating convention.

    Round ``r``'s ``h_r`` successes are attributed to the next ``h_r`` ids in
    a round-robin over ``0..honest_miners-1``, so no miner is re-selected
    while its previous block is still in flight (guaranteed feasible, or
    :class:`SimulationError`).  Feeding the returned schedule to
    :class:`~repro.simulation.oracle.ScriptedMiningOracle` makes the legacy
    simulator follow the scenario engine's honest-mining semantics exactly.
    """
    if honest_miners < 1:
        raise SimulationError(
            f"honest_miners must be >= 1, got {honest_miners!r}"
        )
    counts = np.asarray(honest_counts, dtype=np.int64)
    if counts.ndim != 1:
        raise SimulationError("honest_counts must be 1-dimensional")
    if (counts < 0).any():
        raise SimulationError("honest_counts must be non-negative")
    _require_attribution_feasible(counts, honest_miners, honest_delay)
    schedule: List[np.ndarray] = []
    cursor = 0
    for count in counts:
        count = int(count)
        schedule.append((cursor + np.arange(count, dtype=np.int64)) % honest_miners)
        cursor = (cursor + count) % honest_miners
    return schedule


# ----------------------------------------------------------------------
# Pure-Python per-trial reference for the two-component partition scan
# ----------------------------------------------------------------------
def reference_partition_scan(
    honest_counts: Sequence[int],
    adversary_counts: Sequence[int],
    split_counts: Optional[Sequence[int]] = None,
    *,
    delta: int,
    windows: Sequence[Tuple[int, int]] = (),
    kind: str = "private_chain",
    target_depth: int = 6,
    give_up_deficit: Optional[int] = 12,
    release_delay: int = 0,
) -> Dict[str, object]:
    """One trial of the two-component partition scan, in plain Python.

    This is the executable specification the vectorized
    :meth:`ScenarioSimulation._scan_partition` must match *bit for bit*:
    the equivalence tests sweep a (nu, Δ, cut-fraction, duration) grid and
    compare every tally and per-round record, and the equivocation
    benchmark uses it as the per-trial baseline for the speedup gate.

    ``windows`` holds disjoint, sorted ``[start, end)`` cut windows in
    0-indexed scan rounds (see
    :func:`~repro.simulation.dynamics.partition_windows`).  During a window
    honest successes split between the majority component 0
    (``honest - split``) and the minority component 1 (``split``), each
    component runs its own Δ-delay ring, and the common prefix is frozen at
    the cut round; the heal merges max-height-wins and tallies the losing
    side's displaced depth.  Outside every window the scan is exactly the
    aggregate engine's constant-delay path.
    """
    if kind not in PARTITION_KINDS:
        raise SimulationError(
            f"the partition scan prices kinds {PARTITION_KINDS}, got {kind!r}"
        )
    if delta < 1:
        raise SimulationError(f"delta must be >= 1, got {delta!r}")
    if release_delay < 0:
        raise SimulationError(
            f"release_delay must be >= 0, got {release_delay!r}"
        )
    honest = [int(count) for count in honest_counts]
    adversary = [int(count) for count in adversary_counts]
    rounds = len(honest)
    split = (
        [0] * rounds if split_counts is None else [int(s) for s in split_counts]
    )
    if len(adversary) != rounds or len(split) != rounds:
        raise SimulationError("trace lengths must match")
    window_list = sorted((int(start), int(end)) for start, end in windows)
    starts = {start: end for start, end in window_list if start < rounds}
    equivocating = kind == "equivocation"

    pub = [0, 0]
    ring = [[0] * delta, [0] * delta]
    rel_h = [[0] * release_delay, [0] * release_delay]
    rel_f = [[0] * release_delay, [0] * release_delay]
    priv = [0, 0]
    fork = [0, 0]
    active = [False, False]
    withheld = [0, 0]
    common = 0
    cut = False
    cut_end = -1
    releases = abandons = deepest = orphaned = merge_depth = 0
    public_heights: List[int] = []
    private_heights: List[int] = []
    release_mask: List[bool] = []
    abandon_mask: List[bool] = []

    for index in range(rounds):
        # Phase 0a: merge-on-heal — max height wins, the losing component's
        # suffix above the frozen common prefix is the displaced depth.
        if cut and index == cut_end:
            winner = 0 if pub[0] >= pub[1] else 1
            displaced = pub[1 - winner] - common
            merge_depth = max(merge_depth, displaced)
            deepest = max(deepest, displaced)
            pub[0] = pub[winner]
            ring[0] = [max(a, b) for a, b in zip(ring[0], ring[1])]
            for slot in range(release_delay):
                if rel_h[1][slot] > rel_h[0][slot]:
                    rel_h[0][slot] = rel_h[1][slot]
                    rel_f[0][slot] = rel_f[1][slot]
            if equivocating:
                # The chain racing the winning component survives; the one
                # racing the displaced chain forked from a dead branch.
                if winner == 1:
                    priv[0], fork[0] = priv[1], fork[1]
                    active[0], withheld[0] = active[1], withheld[1]
                priv[1] = fork[1] = withheld[1] = 0
                active[1] = False
            cut = False
            common = 0
        # Phase 0b: cut entry — both components start from the merged state;
        # the common prefix freezes at the pre-cut public height.
        if not cut and index in starts:
            cut = True
            cut_end = starts[index]
            pub[1] = pub[0]
            ring[1] = list(ring[0])
            rel_h[1] = list(rel_h[0])
            rel_f[1] = list(rel_f[0])
            common = pub[0]
            if equivocating:
                priv[1], fork[1] = priv[0], fork[0]
                active[1], withheld[1] = active[0], withheld[0]

        components = (0, 1) if cut else (0,)

        # Phase 1: start-of-round ring deliveries, per component.
        slot = index % delta
        for c in components:
            pub[c] = max(pub[c], ring[c][slot])

        # Phase 1b: landing of in-flight adversarial releases.
        if release_delay >= 1:
            release_slot = index % release_delay
            if equivocating and cut:
                # Per-component conflicting releases: each lands on its own
                # side only and never advances the common prefix.
                for c in components:
                    landing = rel_h[c][release_slot]
                    if landing > 0:
                        if landing > pub[c]:
                            landed = pub[c] - rel_f[c][release_slot]
                            deepest = max(deepest, landed)
                            pub[c] = landing
                        rel_h[c][release_slot] = 0
                        rel_f[c][release_slot] = 0
            else:
                # Single-chain release, mirrored into both rings during a
                # cut: the adversary spans the cut, so it lands everywhere.
                landing = rel_h[0][release_slot]
                if landing > 0:
                    landed = 0
                    displaced_everywhere = True
                    for c in components:
                        if landing > pub[c]:
                            landed = max(
                                landed, pub[c] - rel_f[c][release_slot]
                            )
                        else:
                            displaced_everywhere = False
                    if kind == "selfish_mining":
                        orphaned += landed
                    deepest = max(deepest, landed)
                    if cut and displaced_everywhere:
                        common = landing
                    for c in components:
                        pub[c] = max(pub[c], landing)
                        rel_h[c][release_slot] = 0
                        rel_f[c][release_slot] = 0

        # Phase 2: honest mining — the minority component mines the split
        # share; every component's successes sit one above its own tip.
        total = honest[index]
        minority = split[index] if cut else 0
        counts = [total - minority, minority]
        mined = [0, 0]
        for c in components:
            mined[c] = pub[c] + 1
            ring[c][slot] = mined[c] if counts[c] > 0 else 0

        # Phases 3/4: adversarial mining and the release decision.
        mined_adversary = adversary[index]
        released_any = False
        abandoned_any = False
        if equivocating and cut:
            # Feed the weaker race: the whole round's successes extend the
            # chain with the smaller lead (minority side on a full tie).
            lead0 = priv[0] - pub[0]
            lead1 = priv[1] - pub[1]
            choose1 = lead1 < lead0 or (lead1 == lead0 and pub[1] < pub[0])
            allocation = [0, mined_adversary] if choose1 else [mined_adversary, 0]
            for c in (0, 1):
                if allocation[c] > 0 and not active[c]:
                    fork[c] = pub[c]
                    priv[c] = pub[c]
                priv[c] += allocation[c]
                withheld[c] += allocation[c]
                active[c] = active[c] or allocation[c] > 0
            for c in (0, 1):
                lead = priv[c] - pub[c]
                depth = pub[c] - fork[c]
                released = lead > 0 and depth >= target_depth
                abandoned = (
                    give_up_deficit is not None
                    and active[c]
                    and lead <= -give_up_deficit
                )
                if released:
                    releases += 1
                    released_any = True
                    if release_delay >= 1:
                        rel_h[c][release_slot] = priv[c]
                        rel_f[c][release_slot] = fork[c]
                    else:
                        deepest = max(deepest, depth)
                        pub[c] = priv[c]
                if abandoned:
                    abandons += 1
                    abandoned_any = True
                if released or abandoned:
                    priv[c] = fork[c] = withheld[c] = 0
                    active[c] = False
        else:
            # Single private chain racing the best public chain it can see.
            best = max(pub[c] for c in components)
            if mined_adversary > 0 and not active[0]:
                fork[0] = best
                priv[0] = best
            priv[0] += mined_adversary
            withheld[0] += mined_adversary
            active[0] = active[0] or mined_adversary > 0
            lead = priv[0] - best
            depth = best - fork[0]
            if kind == "selfish_mining":
                abandoned = active[0] and lead <= -1
                released = active[0] and 0 <= lead <= 1
            else:
                abandoned = (
                    give_up_deficit is not None
                    and active[0]
                    and lead <= -give_up_deficit
                )
                released = lead > 0 and depth >= target_depth
            if released:
                releases += 1
                released_any = True
                if release_delay >= 1:
                    for c in components:
                        rel_h[c][release_slot] = priv[0]
                        rel_f[c][release_slot] = fork[0]
                else:
                    if kind == "selfish_mining":
                        orphaned += depth
                    deepest = max(deepest, depth)
                    for c in components:
                        pub[c] = priv[0]
                    if cut:
                        # The release is one chain adopted by both sides:
                        # the components re-converge on the private chain.
                        common = priv[0]
            if abandoned:
                abandons += 1
                abandoned_any = True
            if released or abandoned:
                priv[0] = fork[0] = withheld[0] = 0
                active[0] = False

        public_heights.append(max(pub[c] for c in components))
        private_heights.append(max(priv) if (equivocating and cut) else priv[0])
        release_mask.append(released_any)
        abandon_mask.append(abandoned_any)

    # Network flush: in-flight honest blocks and adversarial releases all
    # arrive eventually; a still-open window never merges (no depth tally),
    # exactly like a release the run ended before the network saw land.
    final = 0
    for c in (0, 1) if cut else (0,):
        final = max(final, pub[c], max(ring[c]))
        if release_delay >= 1:
            final = max(final, max(rel_h[c]))
    withheld_final = max(withheld[0], withheld[1]) if cut else withheld[0]

    return {
        "releases": releases,
        "abandons": abandons,
        "deepest_fork": deepest,
        "orphaned_honest": orphaned,
        "withheld_final": withheld_final,
        "final_public_height": final,
        "merge_depth": merge_depth,
        "public_heights": public_heights,
        "private_heights": private_heights,
        "release_mask": release_mask,
        "abandon_mask": abandon_mask,
    }


# ----------------------------------------------------------------------
# Result object
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Per-trial attack outcomes plus aggregate statistics for one batch run.

    All per-trial arrays have shape ``(trials,)``.  The per-round record
    tensors (shape ``(trials, rounds)``) are retained only when the run was
    made with ``record_rounds=True``; the raw success-count tensors only
    with ``keep_traces=True``.
    """

    params: ProtocolParameters
    scenario: Scenario
    trials: int
    rounds: int
    draw_mode: str
    honest_delay: int
    releases: np.ndarray
    deepest_forks: np.ndarray
    orphaned_honest: np.ndarray
    abandons: np.ndarray
    withheld_final: np.ndarray
    final_public_heights: np.ndarray
    honest_blocks: np.ndarray
    adversary_blocks: np.ndarray
    convergence_opportunities: np.ndarray
    worst_deficits: np.ndarray
    public_heights: Optional[np.ndarray] = field(default=None, repr=False)
    private_heights: Optional[np.ndarray] = field(default=None, repr=False)
    release_mask: Optional[np.ndarray] = field(default=None, repr=False)
    abandon_mask: Optional[np.ndarray] = field(default=None, repr=False)
    decision_leads: Optional[np.ndarray] = field(default=None, repr=False)
    decision_fork_depths: Optional[np.ndarray] = field(default=None, repr=False)
    honest_counts: Optional[np.ndarray] = field(default=None, repr=False)
    adversary_counts: Optional[np.ndarray] = field(default=None, repr=False)
    #: Name of the delay model governing honest delivery, or ``None`` when
    #: the scenario's own constant ``honest_delay`` applied (the legacy path).
    delay_model: Optional[str] = None
    #: Rounds an adversarial release took to reach the honest miners (0 =
    #: the legacy perfectly-connected adversary; see ``AdversaryPlacement``).
    release_delay: int = 0
    #: Deepest suffix displaced at a partition heal, per trial (all zeros on
    #: the aggregate path — only the two-component scan can merge).
    merge_depths: Optional[np.ndarray] = field(default=None, repr=False)
    #: ``(trials, rounds, 2)`` per-component public heights, kept only by the
    #: two-component scan under ``record_rounds=True``.
    component_heights: Optional[np.ndarray] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Attack-success statistics
    # ------------------------------------------------------------------
    def attack_success_mask(self, depth: Optional[int] = None) -> np.ndarray:
        """Per-trial flags: the attack displaced a suffix at least this deep.

        ``depth`` defaults to the scenario's success depth (the withholding
        target for ``private_chain``, one orphaned block otherwise).
        """
        depth = self.scenario.success_depth if depth is None else depth
        if depth < 1:
            raise SimulationError(f"depth must be >= 1, got {depth!r}")
        return self.deepest_forks >= depth

    @property
    def attack_success_probability(self) -> float:
        """Fraction of trials in which the attack succeeded."""
        return float(self.attack_success_mask().mean())

    @property
    def attack_success_ci95(self) -> Tuple[float, float]:
        """Wilson score 95% interval for the attack-success probability.

        Proportion-valued over 0-1 outcomes, so it uses
        :func:`~repro.simulation.batch.proportion_confidence_interval`:
        all-failure and all-success batches report honest non-degenerate
        bounds instead of a zero-width normal interval.
        """
        mask = self.attack_success_mask()
        return proportion_confidence_interval(int(mask.sum()), mask.size)

    @property
    def mean_deepest_fork(self) -> float:
        """Batch mean of the per-trial deepest displaced suffix."""
        return float(self.deepest_forks.mean())

    @property
    def deepest_fork_ci95(self) -> Tuple[float, float]:
        """95% confidence interval for the mean deepest fork."""
        return _confidence_interval(self.deepest_forks)

    @property
    def max_deepest_fork(self) -> int:
        """Deepest displaced suffix across all trials."""
        return int(self.deepest_forks.max(initial=0))

    # ------------------------------------------------------------------
    # Chain statistics
    # ------------------------------------------------------------------
    @property
    def growth_rates(self) -> np.ndarray:
        """Per-trial public chain growth (blocks per round).

        Convention (audited against the legacy per-trial simulator, which
        labels rounds 1..rounds): ``final_public_heights`` includes the
        end-of-run network flush — blocks still in flight when mining stops
        are delivered before the height is read — and the denominator is the
        number of mining rounds.  This matches
        ``SimulationResult.growth_rate`` bit-for-bit; there is no off-by-one
        between the engines, and the golden test pins it.
        """
        return self.final_public_heights / self.rounds

    @property
    def empirical_convergence_rates(self) -> np.ndarray:
        """Per-trial convergence opportunities per round (compare to Eq. 44)."""
        return self.convergence_opportunities / self.rounds

    @property
    def lemma1_margins(self) -> np.ndarray:
        """Per-trial Lemma 1 margins ``C - A`` over the whole run."""
        return self.convergence_opportunities - self.adversary_blocks

    @property
    def lemma1_fraction(self) -> float:
        """Fraction of trials in which the Lemma 1 event ``C > A`` held."""
        return float((self.lemma1_margins > 0).mean())

    def release_rounds(self, trial: int) -> np.ndarray:
        """1-indexed rounds at which ``trial`` released a private chain."""
        if self.release_mask is None:
            raise SimulationError(
                "per-round records were not kept; run with record_rounds=True"
            )
        return np.nonzero(self.release_mask[trial])[0] + 1

    def abandon_rounds(self, trial: int) -> np.ndarray:
        """1-indexed rounds at which ``trial`` abandoned its private fork."""
        if self.abandon_mask is None:
            raise SimulationError(
                "per-round records were not kept; run with record_rounds=True"
            )
        return np.nonzero(self.abandon_mask[trial])[0] + 1

    def summary(self) -> Dict[str, object]:
        """A flat dictionary of the headline numbers (for tables)."""
        success_ci = self.attack_success_ci95
        fork_ci = self.deepest_fork_ci95
        return {
            "scenario": self.scenario.name,
            "trials": self.trials,
            "rounds": self.rounds,
            "c": self.params.c,
            "nu": self.params.nu,
            "delta": self.params.delta,
            "honest_delay": self.honest_delay,
            "attack_success_probability": self.attack_success_probability,
            "attack_success_ci95_low": success_ci[0],
            "attack_success_ci95_high": success_ci[1],
            "mean_deepest_fork": self.mean_deepest_fork,
            "deepest_fork_ci95_low": fork_ci[0],
            "deepest_fork_ci95_high": fork_ci[1],
            "max_deepest_fork": self.max_deepest_fork,
            "mean_releases": float(self.releases.mean()),
            "mean_abandons": float(self.abandons.mean()),
            "mean_orphaned_honest": float(self.orphaned_honest.mean()),
            "mean_growth_rate": float(self.growth_rates.mean()),
            "lemma1_fraction": self.lemma1_fraction,
            "delay_model": self.delay_model,
            "release_delay": self.release_delay,
            "mean_merge_depth": (
                0.0
                if self.merge_depths is None
                else float(self.merge_depths.mean())
            ),
        }


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class ScenarioSimulation:
    """NumPy-vectorized batch execution of one adversarial scenario.

    Parameters
    ----------
    params:
        Protocol parameters (``p``, ``n``, ``Δ``, ``nu``).
    scenario:
        A registry name (``"passive"``, ``"max_delay"``, ``"private_chain"``,
        ``"selfish_mining"``) or a :class:`Scenario` instance.
    rng:
        Source of randomness; the draw protocol is exactly
        :func:`~repro.simulation.batch.draw_mining_traces`, so one seed
        determines the whole batch and the scripted-replay harness can
        regenerate it.
    draw_mode:
        ``"binomial"`` (default) or ``"bernoulli"``.
    delay_model:
        ``None`` (default) keeps the scenario's own constant
        ``honest_delay`` — the legacy, bit-exact path — unless the scenario
        itself schedules a network cut (a
        :class:`~repro.simulation.dynamics.PartitionScenario`), in which
        case the matching
        :class:`~repro.simulation.dynamics.TimeVaryingDelayModel` is built
        automatically.  A registry name or
        :class:`~repro.simulation.topology.DelayModel` instance replaces the
        adversary-chosen constant with structural per-block delivery offsets
        drawn from the model; ``"fixed_delta"`` is the constant-Δ worst
        case, bit-identical to the legacy path for every scenario whose
        honest delay is Δ (``max_delay`` and both withholding kinds).
        Time-varying models may exceed Δ inside adversarial windows; the
        delivery pipeline is sized from the model's
        :meth:`~repro.simulation.topology.DelayModel.delay_cap`.
    power:
        Optional heterogeneous
        :class:`~repro.simulation.topology.MiningPowerProfile`; validated
        against ``params`` before any draw.
    workspace:
        Optional :class:`~repro.backend.Workspace` of preallocated scratch
        buffers for the scan state and window kernels; pass one workspace
        across repeated runs (as the runner does) and the hot loops stop
        allocating.  Results never alias the workspace.  Like the batch
        engine, the ambient backend and dtype policy are bound at
        construction and results are converted to host NumPy at the
        boundary.
    placement:
        Optional :class:`~repro.simulation.dynamics.AdversaryPlacement`
        (any object with a ``release_delay(topology, delta)`` method and a
        ``kind``).  ``None`` or an ``instant`` placement keeps the legacy
        assumption that adversarial releases reach every honest miner in
        the release round; other placements make releases propagate through
        gossip from the adversary's graph position — the release lands
        ``release_delay`` rounds later, and the displaced suffix is
        measured when it lands.  Only meaningful for withholding scenarios
        (``publish`` kinds broadcast continuously and reject non-instant
        placements).

    Examples
    --------
    >>> from repro.params import parameters_from_c
    >>> params = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)
    >>> result = ScenarioSimulation(params, "private_chain", rng=0).run(16, 2_000)
    >>> result.releases.shape
    (16,)
    >>> 0.0 <= result.attack_success_probability <= 1.0
    True
    """

    def __init__(
        self,
        params: ProtocolParameters,
        scenario: Union[str, Scenario] = "passive",
        rng: SeedLike = None,
        draw_mode: str = "binomial",
        delay_model: Union[None, str, DelayModel] = None,
        power: Optional[MiningPowerProfile] = None,
        placement=None,
        workspace: Optional[Workspace] = None,
        allow_partial_partitions: bool = False,
    ):
        if draw_mode not in DRAW_MODES:
            raise SimulationError(
                f"draw_mode must be one of {DRAW_MODES}, got {draw_mode!r}"
            )
        self.backend = get_backend()
        self.policy = get_dtype_policy()
        self.workspace = workspace
        if workspace is not None:
            workspace.bind(self.backend)
        self.params = params
        self.scenario = get_scenario(scenario)
        # A PartitionScenario with a cut_fraction prices the cut as a real
        # two-component chain race (majority vs minority); everything else
        # takes the aggregate single-height scan.
        self._cut_fraction = getattr(self.scenario, "cut_fraction", None)
        if self.scenario.kind == "equivocation" and self._cut_fraction is None:
            raise SimulationError(
                "equivocation needs two network components to show "
                "conflicting chains to; set cut_fraction on the scenario"
            )
        if self._cut_fraction is not None:
            if self.scenario.kind not in PARTITION_KINDS:
                raise SimulationError(
                    f"partial partitions price kinds {PARTITION_KINDS}, got "
                    f"{self.scenario.kind!r}"
                )
            if delay_model is not None:
                raise SimulationError(
                    "partial-cut scenarios own their delivery semantics (the "
                    "two-component scan); an explicit delay_model cannot be "
                    "combined with cut_fraction"
                )
            self.delay_model = None
            self.honest_delay = self.scenario.resolved_honest_delay(
                params.delta
            )
            self._init_placement(placement)
            self.rng = resolve_rng(rng)
            self.draw_mode = draw_mode
            self.power = power
            if self.power is not None:
                self.power.validate_against(params)
            self.honest_miners = max(int(round(params.honest_count)), 1)
            return
        self.delay_model = resolve_delay_model(delay_model)
        if self.delay_model is None:
            # A scenario that schedules its own network cut supplies the
            # matching time-varying delay model (duck-typed so this module
            # does not need to import repro.simulation.dynamics).
            builder = getattr(self.scenario, "build_delay_model", None)
            if builder is not None:
                self.delay_model = builder()
        self._check_partial_partition_events(allow_partial_partitions)
        if self.delay_model is None:
            self.honest_delay = self.scenario.resolved_honest_delay(params.delta)
        else:
            # The model governs honest delivery; the Δ cap is the constant
            # bound every *static* draw respects (time-varying models widen
            # the pipeline via delay_cap at run time).
            self.honest_delay = params.delta
        self._init_placement(placement)
        self.rng = resolve_rng(rng)
        self.draw_mode = draw_mode
        self.power = power
        if self.power is not None:
            self.power.validate_against(params)
        self.honest_miners = max(int(round(params.honest_count)), 1)

    def _init_placement(self, placement) -> None:
        self.placement = placement
        if placement is None or placement.kind == "instant":
            self.release_delay = 0
            return
        if self.scenario.kind == "publish":
            raise SimulationError(
                "publish scenarios broadcast continuously; adversary "
                "placement applies only to withholding scenarios"
            )
        topology = getattr(self.delay_model, "topology", None)
        self.release_delay = int(
            placement.release_delay(topology, self.params.delta)
        )
        if not (0 <= self.release_delay <= self.params.delta):
            raise SimulationError(
                f"placement release delay {self.release_delay} lies "
                f"outside [0, {self.params.delta}]"
            )

    def _check_partial_partition_events(self, allow: bool) -> None:
        """Refuse to misprice a partial cut on the aggregate-height path.

        A ``PartitionEvent`` with an explicit node set leaves the remaining
        honest miners connected: two components, two chain races.  The
        aggregate scan tracks one public height, which is exact only for
        full eclipses, so routing a partial cut through it silently
        underprices the majority/minority race — price it with
        ``cut_fraction`` (the two-component scan) instead.  Pass
        ``allow_partial_partitions=True`` to accept the mispricing loudly.
        """
        schedule = getattr(self.delay_model, "schedule", None)
        if schedule is None or schedule.empty:
            return
        partial = [
            event.payload()
            for event in schedule.events
            if event.payload().get("kind") == "partition"
            and event.payload().get("nodes") is not None
        ]
        if not partial:
            return
        message = (
            f"{len(partial)} partition event(s) cut an explicit node set, "
            "leaving the rest of the network connected; the aggregate "
            "single-height scan misprices that two-component race. Use a "
            "PartitionScenario with cut_fraction to price it exactly, or "
            "pass allow_partial_partitions=True to proceed anyway."
        )
        if not allow:
            raise ValueError(message)
        warnings.warn(message, RuntimeWarning, stacklevel=3)

    def run(
        self,
        trials: int,
        rounds: int,
        keep_traces: bool = False,
        record_rounds: bool = False,
    ) -> ScenarioResult:
        """Draw fresh traces for ``trials`` independent runs and simulate them.

        Draw order: honest tensor, adversarial tensor, then (non-trivial
        delay models only) the delay tensor — ``fixed_delta`` consumes no
        entropy, so its stream matches the legacy engine's exactly.  A
        partial-cut scenario has no delay model, so its third draw is the
        minority-split tensor: per round, ``Binomial(honest, cut_fraction)``
        of the honest successes land in the minority component.
        """
        with _TRACE.span(
            "scenario.run",
            scenario=self.scenario.name,
            trials=int(trials),
            rounds=int(rounds),
            draw_mode=self.draw_mode,
        ):
            with _TRACE.span("scenario.draw"):
                honest, adversary = draw_mining_traces(
                    self.params,
                    trials,
                    rounds,
                    self.rng,
                    self.draw_mode,
                    power=self.power,
                    backend=self.backend,
                    policy=self.policy,
                )
                if self._cut_fraction is not None:
                    split = self.backend.binomial(
                        self.rng,
                        self.backend.to_host(honest),
                        float(self._cut_fraction),
                        honest.shape,
                    )
            if self._cut_fraction is not None:
                return self.run_traces(
                    honest,
                    adversary,
                    keep_traces=keep_traces,
                    record_rounds=record_rounds,
                    split_counts=split,
                )
            with _TRACE.span("scenario.draw_delays"):
                delays = None
                max_delay = None
                if self.delay_model is not None and not self.delay_model.trivial:
                    delays = self.delay_model.draw_delays(
                        trials, rounds, self.params.delta, self.rng
                    )
                    max_delay = self.delay_model.delay_cap(
                        self.params.delta, rounds
                    )
            return self.run_traces(
                honest,
                adversary,
                keep_traces=keep_traces,
                record_rounds=record_rounds,
                delays=delays,
                max_delay=max_delay,
            )

    def run_traces(
        self,
        honest_counts: np.ndarray,
        adversary_counts: np.ndarray,
        keep_traces: bool = False,
        record_rounds: bool = False,
        delays: Optional[np.ndarray] = None,
        max_delay: Optional[int] = None,
        split_counts: Optional[np.ndarray] = None,
    ) -> ScenarioResult:
        """Simulate the scenario over pre-drawn ``(trials, rounds)`` tensors.

        This is the deterministic half of the engine — the half the scripted
        replay equivalence tests drive on both sides.  ``delays`` carries
        pre-drawn per-block honest delivery offsets; ``None`` uses the
        constant ``honest_delay``.  ``max_delay`` (default Δ) widens the
        validation cap and delivery pipeline for time-varying models whose
        adversarial windows exceed Δ.  ``split_counts`` (partial-cut
        scenarios only) carries the pre-drawn minority share of each round's
        honest successes; ``None`` keeps every honest success in the
        majority component.
        """
        xp = self.backend
        index_dtype = self.policy.index_dtype(xp)
        honest = xp.asarray(honest_counts, dtype=index_dtype)
        adversary = xp.asarray(adversary_counts, dtype=index_dtype)
        if honest.ndim != 2:
            raise SimulationError(
                f"honest_counts must have shape (trials, rounds), got {honest.shape}"
            )
        if honest.shape != adversary.shape:
            raise SimulationError(
                f"honest shape {honest.shape} does not match adversary shape "
                f"{adversary.shape}"
            )
        if (honest < 0).any() or (adversary < 0).any():
            raise SimulationError("success counts must be non-negative")
        trials, rounds = honest.shape
        if rounds < 1:
            raise SimulationError("rounds must be positive")
        self.policy.check_rounds(rounds)
        _METRICS.increment("engine.scenario.trials", trials)
        _METRICS.increment("engine.scenario.rounds", trials * rounds)
        cap = self.params.delta if max_delay is None else int(max_delay)
        if cap < self.params.delta:
            raise SimulationError(
                f"max_delay must be >= delta ({self.params.delta}), got "
                f"{max_delay!r}"
            )
        if delays is not None:
            delays = xp.asarray(delays, dtype=index_dtype)
            if delays.shape != honest.shape:
                raise SimulationError(
                    f"delays shape {delays.shape} does not match honest shape "
                    f"{honest.shape}"
                )
            if (delays < 0).any() or (delays > cap).any():
                raise SimulationError(f"delays must lie in [0, {cap}]")
        window = cap if delays is not None else self.honest_delay
        _require_attribution_feasible(
            honest, self.honest_miners, window, backend=xp, policy=self.policy
        )

        cut_windows: List[Tuple[int, int]] = []
        if self._cut_fraction is not None:
            if delays is not None:
                raise SimulationError(
                    "partial-cut scenarios have no delay model; delays "
                    "cannot be supplied"
                )
            cut_windows = list(self.scenario.partition_windows(rounds))
            if split_counts is None:
                split = xp.zeros(honest.shape, dtype=index_dtype)
            else:
                split = xp.asarray(split_counts, dtype=index_dtype)
                if split.shape != honest.shape:
                    raise SimulationError(
                        f"split_counts shape {split.shape} does not match "
                        f"honest shape {honest.shape}"
                    )
                if (split < 0).any() or (split > honest).any():
                    raise SimulationError(
                        "split_counts must lie in [0, honest_counts]"
                    )
            with _TRACE.span(
                "scenario.scan_partition", trials=trials, rounds=rounds
            ):
                state = self._scan_partition(
                    honest, adversary, split, record_rounds, windows=cut_windows
                )
        elif split_counts is not None:
            raise SimulationError(
                "split_counts applies only to partial-cut scenarios "
                "(PartitionScenario with cut_fraction set)"
            )
        else:
            with _TRACE.span("scenario.scan", trials=trials, rounds=rounds):
                state = self._scan(
                    honest, adversary, record_rounds, delays=delays, cap=cap
                )
        with _TRACE.span("scenario.mask", trials=trials, rounds=rounds):
            if delays is None:
                if self.workspace is not None:
                    mask = _opportunity_mask_ws(
                        self.workspace,
                        xp,
                        honest,
                        self.params.delta,
                        self.policy.mask_dtype(xp),
                        index_dtype,
                    )
                else:
                    mask = xp.from_host(
                        convergence_opportunity_mask(
                            xp.to_host(honest), self.params.delta
                        )
                    )
            else:
                mask = convergence_opportunity_mask_with_delays(
                    honest,
                    delays,
                    self.params.delta,
                    max_delay=cap,
                    backend=xp,
                    policy=self.policy,
                )
            # During a cut no round is a convergence opportunity — the honest
            # miners cannot all hear a unique block while the network is split
            # — so the Lemma 1 window accounting drops those columns entirely.
            for start, end in cut_windows:
                mask[:, start:end] = 0
        with _TRACE.span("scenario.deficits", trials=trials, rounds=rounds):
            deficits = worst_window_deficits(
                mask,
                adversary,
                workspace=self.workspace,
                backend=xp,
                policy=self.policy,
            )
        return ScenarioResult(
            params=self.params,
            scenario=self.scenario,
            trials=trials,
            rounds=rounds,
            draw_mode=self.draw_mode,
            honest_delay=self.honest_delay,
            honest_blocks=xp.to_host(honest.sum(axis=1, dtype=index_dtype)),
            adversary_blocks=xp.to_host(adversary.sum(axis=1, dtype=index_dtype)),
            convergence_opportunities=xp.to_host(
                mask.sum(axis=1, dtype=index_dtype)
            ),
            worst_deficits=xp.to_host(deficits),
            honest_counts=xp.to_host(honest) if keep_traces else None,
            adversary_counts=xp.to_host(adversary) if keep_traces else None,
            delay_model=(
                None if self.delay_model is None else self.delay_model.name
            ),
            release_delay=self.release_delay,
            **state,
        )

    # ------------------------------------------------------------------
    # The round scan
    # ------------------------------------------------------------------
    def _scan(
        self,
        honest,
        adversary,
        record_rounds: bool,
        delays=None,
        cap: Optional[int] = None,
    ) -> Dict[str, Optional[np.ndarray]]:
        """One pass over rounds with all per-trial state as vectors.

        Mirrors :meth:`NakamotoSimulation.run` phase by phase; see the
        module docstring for the correspondence argument.  With ``delays``
        the constant-delay ring buffer is replaced by a ``(trials, cap+1)``
        schedule of arrival heights indexed by delivery round modulo
        ``cap+1`` (``cap`` is the model's delay cap, Δ for static models) —
        every pending delivery lies within ``cap`` rounds, so distinct
        pending delivery rounds always occupy distinct slots.

        A non-zero ``release_delay`` (placement-aware adversary) routes
        releases through a second ring: the released height and fork point
        travel ``release_delay`` rounds before merging into the public
        chain, and the displaced suffix is measured at landing — against
        the public height the honest miners actually reached by then.

        All scan state lives in workspace buffers (a private workspace when
        the engine was built without one), so repeated runs at one
        (trials, rounds) shape reuse their vectors and delivery rings;
        every array that escapes into the result is copied out first.  The
        decision flags stay boolean regardless of the dtype policy — the
        scan's ``~`` / ``&`` logic needs logical, not bitwise, semantics.
        """
        xp = self.backend
        workspace = self.workspace if self.workspace is not None else Workspace(xp)
        index_dtype = self.policy.index_dtype(xp)
        mask_dtype = self.policy.mask_dtype(xp)
        trials, rounds = honest.shape
        kind = self.scenario.kind
        delay = self.honest_delay
        delta = self.params.delta
        cap = delta if cap is None else int(cap)
        release_delay = self.release_delay if kind != "publish" else 0
        target_depth = self.scenario.target_depth
        give_up = self.scenario.give_up_deficit

        # Round-major copies make each round's column contiguous in the scan.
        honest_rows = xp.ascontiguousarray(honest.T)
        adversary_rows = xp.ascontiguousarray(adversary.T)
        delay_rows = (
            None if delays is None else xp.ascontiguousarray(delays.T)
        )

        public = workspace.zeros("scan.public", (trials,), index_dtype)
        private = workspace.zeros("scan.private", (trials,), index_dtype)
        fork = workspace.zeros("scan.fork", (trials,), index_dtype)
        active = workspace.zeros("scan.active", (trials,), xp.bool_)
        withheld = workspace.zeros("scan.withheld", (trials,), index_dtype)
        releases = workspace.zeros("scan.releases", (trials,), index_dtype)
        abandons = workspace.zeros("scan.abandons", (trials,), index_dtype)
        deepest = workspace.zeros("scan.deepest", (trials,), index_dtype)
        orphaned = workspace.zeros("scan.orphaned", (trials,), index_dtype)
        no_release = workspace.zeros("scan.no_release", (trials,), xp.bool_)
        # Per-round temporaries live in the workspace too, so the steady
        # state of the round loop performs no allocation at all.  Flags stay
        # boolean (never the policy mask dtype): the logic needs logical
        # semantics, and the buffers never escape into results.
        some_honest = workspace.empty("scan.some_honest", (trials,), xp.bool_)
        mined_height = workspace.empty("scan.mined_height", (trials,), index_dtype)
        flag = workspace.empty("scan.flag", (trials,), xp.bool_)
        scratch = workspace.empty("scan.scratch", (trials,), index_dtype)
        some_adversary = workspace.empty("scan.some_adversary", (trials,), xp.bool_)
        starting = workspace.empty("scan.starting", (trials,), xp.bool_)
        lead = workspace.empty("scan.lead", (trials,), index_dtype)
        depth = workspace.empty("scan.depth", (trials,), index_dtype)
        released_flags = workspace.empty("scan.released", (trials,), xp.bool_)
        abandoned_flags = workspace.empty("scan.abandoned", (trials,), xp.bool_)
        keep = workspace.empty("scan.keep", (trials,), xp.bool_)
        # Scheduled arrival heights for in-flight honest blocks: slot r % delay
        # holds the height mined at round r, due at the start of round r+delay.
        ring = None
        schedule = None
        if delay_rows is not None:
            schedule = workspace.zeros(
                "scan.schedule", (trials, cap + 1), index_dtype
            )
        elif delay >= 1:
            ring = workspace.zeros("scan.ring", (trials, delay), index_dtype)
        # In-flight adversarial releases (placement-aware adversaries): the
        # slot being delivered this round is the one refilled afterwards, so
        # at most one pending release ever occupies a slot.
        release_heights = None
        release_forks = None
        if release_delay >= 1:
            release_heights = workspace.zeros(
                "scan.release_heights", (trials, release_delay), index_dtype
            )
            release_forks = workspace.zeros(
                "scan.release_forks", (trials, release_delay), index_dtype
            )

        if record_rounds:
            # Record tensors escape into the result, so they are allocated
            # fresh rather than drawn from the workspace.
            public_record = xp.zeros((trials, rounds), dtype=index_dtype)
            private_record = xp.zeros((trials, rounds), dtype=index_dtype)
            release_record = xp.zeros((trials, rounds), dtype=mask_dtype)
            abandon_record = xp.zeros((trials, rounds), dtype=mask_dtype)
            lead_record = xp.zeros((trials, rounds), dtype=index_dtype)
            depth_record = xp.zeros((trials, rounds), dtype=index_dtype)

        for index in range(rounds):
            mined_honest = honest_rows[index]
            mined_adversary = adversary_rows[index]

            # 1. Start-of-round deliveries: blocks mined `delay` rounds ago
            #    (constant path), or whatever the schedule holds for this
            #    delivery round (delay-model path).
            if ring is not None:
                slot = index % delay
                xp.maximum(public, ring[:, slot], out=public)
            elif schedule is not None:
                slot = index % (cap + 1)
                xp.maximum(public, schedule[:, slot], out=public)
                schedule[:, slot] = 0

            # 1b. Landing of in-flight adversarial releases: the displaced
            #     suffix is measured against the public height the honest
            #     miners actually reached while the release gossiped.
            if release_heights is not None:
                release_slot = index % release_delay
                landing = release_heights[:, release_slot]
                if landing.any():
                    displaced = landing > public
                    landed_depth = xp.where(
                        displaced, public - release_forks[:, release_slot], 0
                    )
                    if kind == "selfish_mining":
                        orphaned += landed_depth
                    xp.maximum(deepest, landed_depth, out=deepest)
                    xp.maximum(public, landing, out=public)
                    release_heights[:, release_slot] = 0
                    release_forks[:, release_slot] = 0

            # 2. Honest mining on the delivered public chain; delayed blocks
            #    enter the pipeline, zero-delay blocks land at end of round.
            xp.greater(mined_honest, 0, out=some_honest)
            xp.add(public, 1, out=mined_height)
            if ring is not None:
                xp.multiply(mined_height, some_honest, out=ring[:, slot])
            elif schedule is not None:
                round_delays = delay_rows[index]
                xp.greater(round_delays, 0, out=flag)
                xp.logical_and(some_honest, flag, out=flag)
                pipelined = xp.nonzero(flag)[0]
                if pipelined.size:
                    # Same-delivery-round collisions overwrite an older,
                    # never-larger height (public is monotone), so plain
                    # scatter assignment keeps the schedule's maximum.
                    schedule[
                        pipelined, (index + round_delays[pipelined]) % (cap + 1)
                    ] = mined_height[pipelined]

            # 3. Adversarial mining: extend the private tip, or fork from the
            #    public tip if no private chain exists.
            if kind == "publish":
                # Freshly mined blocks are published at end of round: the
                # public chain absorbs the whole sequential run of successes.
                released = no_release
                abandoned = no_release
                public += mined_adversary
            else:
                xp.greater(mined_adversary, 0, out=some_adversary)
                xp.logical_not(active, out=starting)
                xp.logical_and(some_adversary, starting, out=starting)
                xp.copyto(fork, public, where=starting)
                xp.copyto(private, public, where=starting)
                private += mined_adversary
                withheld += mined_adversary
                active |= some_adversary

                # 4. Release decision against the pre-release public height.
                # Note an inactive trial has private = fork = 0, so lead > 0
                # (and lead in {0, 1} with public > 0) already implies active.
                xp.subtract(private, public, out=lead)
                xp.subtract(public, fork, out=depth)
                if kind == "private_chain":
                    if give_up is not None:
                        xp.less_equal(lead, -give_up, out=abandoned_flags)
                        xp.logical_and(abandoned_flags, active, out=abandoned_flags)
                        abandoned = abandoned_flags
                    else:
                        abandoned = no_release
                    # Released and abandoned are mutually exclusive: release
                    # needs lead > 0, abandonment needs lead <= -give_up.
                    xp.greater(lead, 0, out=released_flags)
                    xp.greater_equal(depth, target_depth, out=flag)
                    xp.logical_and(released_flags, flag, out=released_flags)
                    released = released_flags
                    if release_heights is None:
                        xp.multiply(depth, released, out=scratch)
                        xp.maximum(deepest, scratch, out=deepest)
                else:  # selfish_mining
                    xp.less_equal(lead, -1, out=abandoned_flags)
                    xp.logical_and(abandoned_flags, active, out=abandoned_flags)
                    abandoned = abandoned_flags
                    xp.greater_equal(lead, 0, out=released_flags)
                    xp.less_equal(lead, 1, out=flag)
                    xp.logical_and(released_flags, flag, out=released_flags)
                    xp.logical_and(released_flags, active, out=released_flags)
                    released = released_flags
                    if release_heights is None:
                        orphan = xp.multiply(depth, released, out=scratch)
                        orphaned += orphan
                        xp.maximum(deepest, orphan, out=deepest)
                releases += released
                abandons += abandoned
                if release_heights is None:
                    # A release always publishes a chain at least as high as
                    # the public one, displacing (or tying) the public suffix.
                    xp.copyto(public, private, where=released)
                else:
                    # The release gossips from the adversary's graph position;
                    # its displacement is accounted when it lands.
                    xp.copyto(
                        release_heights[:, release_slot], private, where=released
                    )
                    xp.copyto(
                        release_forks[:, release_slot], fork, where=released
                    )
                xp.logical_or(released, abandoned, out=keep)
                xp.logical_not(keep, out=keep)
                private *= keep
                fork *= keep
                withheld *= keep
                active &= keep

            # 5. End-of-round delivery of zero-delay honest broadcasts.
            if delay_rows is not None:
                xp.equal(round_delays, 0, out=flag)
                immediate = xp.logical_and(some_honest, flag, out=flag)
                if immediate.any():
                    xp.multiply(mined_height, immediate, out=scratch)
                    xp.maximum(public, scratch, out=public)
            elif delay == 0:
                xp.multiply(mined_height, some_honest, out=scratch)
                xp.maximum(public, scratch, out=public)

            if record_rounds:
                public_record[:, index] = public
                private_record[:, index] = private
                release_record[:, index] = released
                abandon_record[:, index] = abandoned
                if kind != "publish":
                    lead_record[:, index] = lead
                    depth_record[:, index] = depth

        # Network flush: every in-flight honest block eventually arrives, as
        # does every in-flight adversarial release (its displaced depth is
        # not tallied — the run ended before the network saw it land).
        final = xp.copy(public)
        if ring is not None:
            xp.maximum(final, ring.max(axis=1), out=final)
        elif schedule is not None:
            xp.maximum(final, schedule.max(axis=1), out=final)
        if release_heights is not None:
            xp.maximum(final, release_heights.max(axis=1), out=final)

        # Escaping per-trial vectors are copied out of the workspace; the
        # per-round record tensors are already freshly owned.
        return {
            "releases": xp.to_host(xp.copy(releases)),
            "abandons": xp.to_host(xp.copy(abandons)),
            "deepest_forks": xp.to_host(xp.copy(deepest)),
            "orphaned_honest": xp.to_host(xp.copy(orphaned)),
            "withheld_final": xp.to_host(xp.copy(withheld)),
            "final_public_heights": xp.to_host(final),
            "public_heights": xp.to_host(public_record) if record_rounds else None,
            "private_heights": xp.to_host(private_record) if record_rounds else None,
            "release_mask": xp.to_host(release_record) if record_rounds else None,
            "abandon_mask": xp.to_host(abandon_record) if record_rounds else None,
            "decision_leads": xp.to_host(lead_record) if record_rounds else None,
            "decision_fork_depths": (
                xp.to_host(depth_record) if record_rounds else None
            ),
            # The aggregate path never splits, so it never merges.
            "merge_depths": xp.to_host(
                xp.zeros((trials,), dtype=index_dtype)
            ),
            "component_heights": None,
        }

    def _scan_partition(
        self,
        honest,
        adversary,
        split,
        record_rounds: bool,
        windows: Sequence[Tuple[int, int]],
    ) -> Dict[str, Optional[np.ndarray]]:
        """The two-component scan: per-component chains during cut windows.

        Vectorized counterpart of :func:`reference_partition_scan` (the
        equivalence tests pin the two bit-exactly).  Component 0 is the
        majority, component 1 the minority; outside every window only
        component 0 exists and the round body is exactly :meth:`_scan`'s
        constant-delay path, so an empty window list is bit-identical to the
        aggregate engine.  ``windows`` holds disjoint sorted ``[start, end)``
        cut rounds — global, not per trial, so the cut/merge phases are
        static branches over vector state.
        """
        xp = self.backend
        workspace = self.workspace if self.workspace is not None else Workspace(xp)
        index_dtype = self.policy.index_dtype(xp)
        mask_dtype = self.policy.mask_dtype(xp)
        trials, rounds = honest.shape
        kind = self.scenario.kind
        delay = self.honest_delay
        if delay < 1:
            raise SimulationError(
                f"the two-component scan needs honest delay >= 1, got {delay}"
            )
        release_delay = self.release_delay
        target_depth = self.scenario.target_depth
        give_up = self.scenario.give_up_deficit
        equivocating = kind == "equivocation"

        window_list = sorted((int(s), int(e)) for s, e in windows)
        starts = {s: e for s, e in window_list if s < rounds}

        honest_rows = xp.ascontiguousarray(honest.T)
        adversary_rows = xp.ascontiguousarray(adversary.T)
        split_rows = xp.ascontiguousarray(split.T)

        def pair(tag, shape=(trials,), dtype=index_dtype):
            return [
                workspace.zeros(f"scan2.{tag}0", shape, dtype),
                workspace.zeros(f"scan2.{tag}1", shape, dtype),
            ]

        pub = pair("public")
        ring = pair("ring", (trials, delay))
        priv = pair("private")
        fork = pair("fork")
        active = pair("active", dtype=xp.bool_)
        withheld = pair("withheld")
        rel_h = rel_f = None
        if release_delay >= 1:
            rel_h = pair("release_heights", (trials, release_delay))
            rel_f = pair("release_forks", (trials, release_delay))
        common = workspace.zeros("scan2.common", (trials,), index_dtype)
        releases = workspace.zeros("scan2.releases", (trials,), index_dtype)
        abandons = workspace.zeros("scan2.abandons", (trials,), index_dtype)
        deepest = workspace.zeros("scan2.deepest", (trials,), index_dtype)
        orphaned = workspace.zeros("scan2.orphaned", (trials,), index_dtype)
        merge_depth = workspace.zeros("scan2.merge_depth", (trials,), index_dtype)
        no_release = workspace.zeros("scan2.no_release", (trials,), xp.bool_)

        if record_rounds:
            public_record = xp.zeros((trials, rounds), dtype=index_dtype)
            private_record = xp.zeros((trials, rounds), dtype=index_dtype)
            release_record = xp.zeros((trials, rounds), dtype=mask_dtype)
            abandon_record = xp.zeros((trials, rounds), dtype=mask_dtype)
            lead_record = xp.zeros((trials, rounds), dtype=index_dtype)
            depth_record = xp.zeros((trials, rounds), dtype=index_dtype)
            component_record = xp.zeros((trials, rounds, 2), dtype=index_dtype)

        cut = False
        cut_end = -1
        for index in range(rounds):
            # 0a. Merge-on-heal: max height wins; the losing component's
            #     suffix above the frozen common prefix is displaced.
            if cut and index == cut_end:
                # The winner mask must be read before pub[0] absorbs the max.
                won1 = pub[1] > pub[0]
                displaced = xp.minimum(pub[0], pub[1]) - common
                xp.maximum(merge_depth, displaced, out=merge_depth)
                xp.maximum(deepest, displaced, out=deepest)
                xp.maximum(pub[0], pub[1], out=pub[0])
                xp.maximum(ring[0], ring[1], out=ring[0])
                if rel_h is not None:
                    higher = rel_h[1] > rel_h[0]
                    xp.copyto(rel_h[0], rel_h[1], where=higher)
                    xp.copyto(rel_f[0], rel_f[1], where=higher)
                if equivocating:
                    # The chain racing the winning component survives; the
                    # loser's chain forked from a displaced branch and is
                    # dropped without an abandon tally.
                    xp.copyto(priv[0], priv[1], where=won1)
                    xp.copyto(fork[0], fork[1], where=won1)
                    xp.copyto(active[0], active[1], where=won1)
                    xp.copyto(withheld[0], withheld[1], where=won1)
                    priv[1][:] = 0
                    fork[1][:] = 0
                    withheld[1][:] = 0
                    active[1][:] = False
                cut = False
                common[:] = 0
            # 0b. Cut entry: both components start from the merged state and
            #     the common prefix freezes at the pre-cut public height.
            if not cut and index in starts:
                cut = True
                cut_end = starts[index]
                pub[1][:] = pub[0]
                ring[1][:] = ring[0]
                if rel_h is not None:
                    rel_h[1][:] = rel_h[0]
                    rel_f[1][:] = rel_f[0]
                common[:] = pub[0]
                if equivocating:
                    priv[1][:] = priv[0]
                    fork[1][:] = fork[0]
                    active[1][:] = active[0]
                    withheld[1][:] = withheld[0]

            mined_honest = honest_rows[index]
            mined_adversary = adversary_rows[index]
            components = (0, 1) if cut else (0,)

            # 1. Start-of-round ring deliveries, per component.
            slot = index % delay
            for c in components:
                xp.maximum(pub[c], ring[c][:, slot], out=pub[c])

            # 1b. Landing of in-flight adversarial releases.
            if rel_h is not None:
                release_slot = index % release_delay
                if equivocating and cut:
                    # Conflicting releases: each lands on its own side only
                    # and never advances the common prefix.
                    for c in components:
                        landing = rel_h[c][:, release_slot]
                        if landing.any():
                            displaced = landing > pub[c]
                            landed = xp.where(
                                displaced,
                                pub[c] - rel_f[c][:, release_slot],
                                0,
                            )
                            xp.maximum(deepest, landed, out=deepest)
                            xp.maximum(pub[c], landing, out=pub[c])
                            rel_h[c][:, release_slot] = 0
                            rel_f[c][:, release_slot] = 0
                else:
                    # Single-chain release, mirrored into both rings during
                    # a cut: the adversary spans the cut and lands
                    # everywhere at once.
                    landing = rel_h[0][:, release_slot]
                    if landing.any():
                        landed = workspace.zeros(
                            "scan2.landed", (trials,), index_dtype
                        )
                        displaced_all = None
                        for c in components:
                            displaced = landing > pub[c]
                            xp.maximum(
                                landed,
                                xp.where(
                                    displaced,
                                    pub[c] - rel_f[c][:, release_slot],
                                    0,
                                ),
                                out=landed,
                            )
                            displaced_all = (
                                displaced
                                if displaced_all is None
                                else displaced_all & displaced
                            )
                        if kind == "selfish_mining":
                            orphaned += landed
                        xp.maximum(deepest, landed, out=deepest)
                        if cut:
                            # Displacing both sides re-converges them on the
                            # released chain.
                            xp.copyto(common, landing, where=displaced_all)
                        # `landing` aliases component 0's ring slot, so the
                        # slots are cleared only after every component read it.
                        for c in components:
                            xp.maximum(pub[c], landing, out=pub[c])
                        for c in components:
                            rel_h[c][:, release_slot] = 0
                            rel_f[c][:, release_slot] = 0

            # 2. Honest mining: the minority component mines the split
            #    share; each component's successes sit above its own tip.
            if cut:
                minority = split_rows[index]
                counts = [mined_honest - minority, minority]
            else:
                counts = [mined_honest]
            for c in components:
                xp.multiply(pub[c] + 1, counts[c] > 0, out=ring[c][:, slot])

            # 3/4. Adversarial mining and the release decision.
            if equivocating and cut:
                # Feed the weaker race: the whole round's successes extend
                # the chain with the smaller lead (minority on a full tie).
                lead0 = priv[0] - pub[0]
                lead1 = priv[1] - pub[1]
                choose1 = (lead1 < lead0) | ((lead1 == lead0) & (pub[1] < pub[0]))
                allocation = [
                    mined_adversary * ~choose1,
                    mined_adversary * choose1,
                ]
                released_any = no_release
                abandoned_any = no_release
                for c in (0, 1):
                    some = allocation[c] > 0
                    starting = some & ~active[c]
                    xp.copyto(fork[c], pub[c], where=starting)
                    xp.copyto(priv[c], pub[c], where=starting)
                    priv[c] += allocation[c]
                    withheld[c] += allocation[c]
                    active[c] |= some
                    lead = priv[c] - pub[c]
                    depth = pub[c] - fork[c]
                    released = (lead > 0) & (depth >= target_depth)
                    if give_up is not None:
                        abandoned = (lead <= -give_up) & active[c]
                    else:
                        abandoned = no_release
                    releases += released
                    abandons += abandoned
                    if rel_h is None:
                        xp.maximum(deepest, depth * released, out=deepest)
                        xp.copyto(pub[c], priv[c], where=released)
                    else:
                        xp.copyto(
                            rel_h[c][:, release_slot], priv[c], where=released
                        )
                        xp.copyto(
                            rel_f[c][:, release_slot], fork[c], where=released
                        )
                    keep = ~(released | abandoned)
                    priv[c] *= keep
                    fork[c] *= keep
                    withheld[c] *= keep
                    active[c] &= keep
                    released_any = released_any | released
                    abandoned_any = abandoned_any | abandoned
                released = released_any
                abandoned = abandoned_any
                lead = xp.maximum(priv[0] - pub[0], priv[1] - pub[1])
                depth = xp.maximum(pub[0] - fork[0], pub[1] - fork[1])
            else:
                # Single private chain racing the best public chain in view.
                best = xp.maximum(pub[0], pub[1]) if cut else pub[0]
                some_adversary = mined_adversary > 0
                starting = some_adversary & ~active[0]
                xp.copyto(fork[0], best, where=starting)
                xp.copyto(priv[0], best, where=starting)
                priv[0] += mined_adversary
                withheld[0] += mined_adversary
                active[0] |= some_adversary
                lead = priv[0] - best
                depth = best - fork[0]
                if kind == "selfish_mining":
                    abandoned = (lead <= -1) & active[0]
                    released = (lead >= 0) & (lead <= 1) & active[0]
                    if rel_h is None:
                        orphan = depth * released
                        orphaned += orphan
                        xp.maximum(deepest, orphan, out=deepest)
                else:
                    if give_up is not None:
                        abandoned = (lead <= -give_up) & active[0]
                    else:
                        abandoned = no_release
                    released = (lead > 0) & (depth >= target_depth)
                    if rel_h is None:
                        xp.maximum(deepest, depth * released, out=deepest)
                releases += released
                abandons += abandoned
                if rel_h is None:
                    for c in components:
                        xp.copyto(pub[c], priv[0], where=released)
                    if cut:
                        # One chain adopted by both sides: the components
                        # re-converge on the private chain.
                        xp.copyto(common, priv[0], where=released)
                else:
                    for c in components:
                        xp.copyto(
                            rel_h[c][:, release_slot], priv[0], where=released
                        )
                        xp.copyto(
                            rel_f[c][:, release_slot], fork[0], where=released
                        )
                keep = ~(released | abandoned)
                priv[0] *= keep
                fork[0] *= keep
                withheld[0] *= keep
                active[0] &= keep

            if record_rounds:
                top = xp.maximum(pub[0], pub[1]) if cut else pub[0]
                public_record[:, index] = top
                private_record[:, index] = (
                    xp.maximum(priv[0], priv[1])
                    if (equivocating and cut)
                    else priv[0]
                )
                release_record[:, index] = released
                abandon_record[:, index] = abandoned
                lead_record[:, index] = lead
                depth_record[:, index] = depth
                component_record[:, index, 0] = pub[0]
                component_record[:, index, 1] = pub[1] if cut else pub[0]

        # Network flush: in-flight honest blocks and adversarial releases
        # all arrive eventually; a window still open at the end of the run
        # never merges — like a release the run ended before the network
        # saw land, its displaced depth is not tallied.
        final = xp.copy(pub[0])
        withheld_final = xp.copy(withheld[0])
        for c in (0, 1) if cut else (0,):
            xp.maximum(final, pub[c], out=final)
            xp.maximum(final, ring[c].max(axis=1), out=final)
            if rel_h is not None:
                xp.maximum(final, rel_h[c].max(axis=1), out=final)
        if cut:
            xp.maximum(withheld_final, withheld[1], out=withheld_final)

        return {
            "releases": xp.to_host(xp.copy(releases)),
            "abandons": xp.to_host(xp.copy(abandons)),
            "deepest_forks": xp.to_host(xp.copy(deepest)),
            "orphaned_honest": xp.to_host(xp.copy(orphaned)),
            "withheld_final": xp.to_host(withheld_final),
            "final_public_heights": xp.to_host(final),
            "public_heights": xp.to_host(public_record) if record_rounds else None,
            "private_heights": xp.to_host(private_record) if record_rounds else None,
            "release_mask": xp.to_host(release_record) if record_rounds else None,
            "abandon_mask": xp.to_host(abandon_record) if record_rounds else None,
            "decision_leads": xp.to_host(lead_record) if record_rounds else None,
            "decision_fork_depths": (
                xp.to_host(depth_record) if record_rounds else None
            ),
            "merge_depths": xp.to_host(xp.copy(merge_depth)),
            "component_heights": (
                xp.to_host(component_record) if record_rounds else None
            ),
        }
