"""Per-round event recording and convergence-opportunity detection.

Section V-A classifies each round as ``H`` (at least one honest block) or
``N`` (no honest block), refines ``H`` into ``H_h`` (exactly ``h`` honest
blocks, Eq. 38), and defines a *convergence opportunity* as the pattern
``HN^{>=Δ} || H_1 N^Δ``: a Δ-round quiet period, a round with exactly one
honest block, and another Δ-round quiet period.  At the end of such a pattern
every honest miner agrees on the same single longest chain.

The detector below consumes the per-round honest block counts produced by the
simulator and counts completed convergence opportunities online, matching the
offline counter :func:`repro.core.concat_chain.count_convergence_opportunities`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SimulationError

__all__ = ["RoundRecord", "ConvergenceOpportunityDetector"]


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one round of the simulation."""

    round_index: int
    honest_blocks: int
    adversary_blocks: int
    public_chain_height: int
    adversary_private_height: int = 0

    @property
    def state(self) -> str:
        """The coarse round state: ``"H"`` or ``"N"`` (honest blocks only)."""
        return "H" if self.honest_blocks > 0 else "N"

    @property
    def detailed_state(self) -> str:
        """The detailed round state of Eq. (38): ``"N"`` or ``"H<h>"``."""
        return "N" if self.honest_blocks == 0 else f"H{self.honest_blocks}"


class ConvergenceOpportunityDetector:
    """Streaming counter of convergence opportunities.

    Feed the per-round honest block count with :meth:`observe`; the counter
    increments at the round that *completes* the pattern
    ``N^Δ, H_1, N^Δ`` (i.e. Δ quiet rounds, exactly one honest block, Δ more
    quiet rounds).

    Examples
    --------
    >>> detector = ConvergenceOpportunityDetector(delta=2)
    >>> for count in [0, 0, 1, 0, 0]:
    ...     detector.observe(count)
    >>> detector.count
    1
    """

    def __init__(self, delta: int):
        if delta < 1:
            raise SimulationError(f"delta must be >= 1, got {delta!r}")
        self.delta = int(delta)
        self._count = 0
        self._rounds_seen = 0
        # Number of consecutive quiet (N) rounds ending at the previous round.
        self._quiet_streak = 0
        # When a candidate single-block round has been seen after a >= delta
        # quiet streak, this holds the number of additional quiet rounds still
        # needed to complete the opportunity; None when no candidate is armed.
        self._pending_quiet: Optional[int] = None

    @property
    def count(self) -> int:
        """Number of completed convergence opportunities so far."""
        return self._count

    @property
    def rounds_seen(self) -> int:
        """Number of rounds observed so far."""
        return self._rounds_seen

    def observe(self, honest_blocks: int) -> bool:
        """Record one round; returns ``True`` if it completed an opportunity."""
        if honest_blocks < 0:
            raise SimulationError("honest_blocks must be non-negative")
        self._rounds_seen += 1
        completed = False

        if honest_blocks == 0:
            if self._pending_quiet is not None:
                self._pending_quiet -= 1
                if self._pending_quiet == 0:
                    self._count += 1
                    completed = True
                    self._pending_quiet = None
            self._quiet_streak += 1
            return completed

        # An H round: it can only *start* a new candidate; any pending
        # candidate is spoiled because its trailing quiet period is broken.
        if honest_blocks == 1 and self._quiet_streak >= self.delta:
            self._pending_quiet = self.delta
        else:
            self._pending_quiet = None
        self._quiet_streak = 0
        return completed

    def observe_many(self, honest_blocks_per_round) -> int:
        """Observe a whole trace; returns the number of opportunities it completed."""
        before = self._count
        for count in honest_blocks_per_round:
            self.observe(int(count))
        return self._count - before
