"""Heterogeneous network topologies: delay models, peer graphs, mining power.

The paper's security analysis prices every message at the single worst-case
bound Δ and gives every miner identical computing power.  Both engines
(:mod:`repro.simulation.batch` and :mod:`repro.simulation.scenarios`)
historically hard-coded that model.  This module relaxes it along three
orthogonal axes while keeping the fixed-Δ world as an exactly-reproducible
special case:

* **delay models** — a registry of per-block delivery-offset distributions.
  A delay model draws, for every ``(trial, round)`` cell, the number of
  rounds until the honest block mined there is visible to *all* honest
  miners.  Every draw is capped at Δ (the network guarantee of Section III
  still holds; realistic propagation is only ever *faster* than the
  adversary's worst case).  ``fixed_delta`` reproduces today's behaviour
  bit-for-bit and consumes no entropy; ``uniform`` and
  ``truncated_geometric`` are parametric spreads; ``peer_graph`` derives
  delays from gossip diffusion over an explicit peer graph.

* **peer graphs** — :class:`PeerGraphTopology` holds a symmetric per-edge
  latency matrix (ring, random-regular, Erdős–Rényi and star generators
  ship, all seeded through :mod:`repro.simulation.rng`).  Gossip
  propagation is computed with a vectorized min-plus relaxation (a
  Floyd–Warshall front sweep): each node's *delivery radius* — the rounds
  until a block originating there has flooded the whole graph — is the row
  maximum of the all-pairs latency-weighted distance matrix.  A pure-Python
  per-source Dijkstra (:meth:`PeerGraphTopology.distances_reference`) stays
  as the correctness oracle and the baseline for the ≥5x benchmark gate.
  :meth:`PeerGraphTopology.effective_delta` maps the topology back into the
  analytical world: the empirical ``q``-quantile of the delivery radii is
  the Δ a fixed-delay analysis would need to cover the topology, so
  ``core.bounds`` / ``core.lemmas`` predictions can be compared against
  simulation under relaxed assumptions (see
  :mod:`repro.analysis.topology_sweeps`).

* **mining power** — :class:`MiningPowerProfile` carries per-miner success
  probabilities ``p_i`` for the honest population and the adversary,
  validated so that the *aggregate* per-round rates match what the analysis
  layer expects (``sum(p_i) = p · m`` per side).  The profile also exposes
  the heterogeneous analogues of ``alpha_bar`` / ``alpha`` / ``alpha1``
  (Poisson-binomial instead of binomial), which quantify how far a skewed
  power distribution moves the convergence-opportunity rate.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend import get_backend, get_dtype_policy
from ..errors import SimulationError
from ..observability import METRICS as _METRICS, TRACE as _TRACE
from ..params import ProtocolParameters, coerce_positive_int
from .rng import SeedLike, resolve_rng

__all__ = [
    "DelayModel",
    "FixedDeltaDelayModel",
    "UniformDelayModel",
    "TruncatedGeometricDelayModel",
    "PeerGraphDelayModel",
    "register_delay_model",
    "get_delay_model",
    "list_delay_models",
    "delay_model_specs",
    "resolve_delay_model",
    "PeerGraphTopology",
    "reference_draw_delays",
    "MiningPowerProfile",
    "convergence_opportunity_mask_with_delays",
]

#: Distance value standing in for "no path yet" during relaxation; large
#: enough to dominate every real latency sum, small enough never to overflow
#: int64 when two of them are added.
_UNREACHED = np.int64(2) ** 31


# ----------------------------------------------------------------------
# Generalized convergence-opportunity detection
# ----------------------------------------------------------------------
def convergence_opportunity_mask_with_delays(
    honest_counts,
    delays,
    delta: int,
    max_delay: Optional[int] = None,
    backend=None,
    policy=None,
):
    """Convergence opportunities under per-block realized delivery delays.

    The fixed-Δ pattern ``N^Δ H_1 N^Δ`` of Eq. (42) generalizes to realized
    delays as follows: round ``r`` (0-indexed) hosts a convergence
    opportunity when

    * exactly one honest block is mined at ``r``;
    * every honest block mined at ``s < r`` has already been delivered
      (``s + d_s < r``), so all honest miners share one view entering ``r``;
    * no honest block is mined before ``r``'s block has flooded the network
      (the next honest success lies strictly after ``r + d_r``);
    * ``r >= delta`` and ``r + d_r <= rounds - 1`` — the same warm-up and
      completion boundary conventions as the fixed-Δ mask, so that with
      ``d ≡ delta`` this function is *bit-identical* to
      :func:`repro.core.concat_chain.convergence_opportunity_mask`.

    As there, the returned mask marks the round at which the opportunity
    *completes* (``r + d_r``), so window sums against adversarial blocks
    line up with :func:`~repro.simulation.batch.worst_window_deficits`.

    ``max_delay`` (default Δ) relaxes the validation cap for delay models
    that break the Δ guarantee for bounded windows — partition and eclipse
    schedules from :mod:`repro.simulation.dynamics`, whose obstructed
    blocks deliver later than Δ.  The detection logic itself is unchanged:
    blocks with huge delays simply never complete an opportunity inside
    the obstructed span, which is exactly the consistency threat being
    measured.
    """
    xp = get_backend(backend)
    policy = get_dtype_policy(policy)
    index_dtype = policy.index_dtype(xp)
    counts = xp.asarray(honest_counts, dtype=index_dtype)
    offsets = xp.asarray(delays, dtype=index_dtype)
    if counts.ndim != 2:
        raise SimulationError(
            f"honest_counts must have shape (trials, rounds), got {counts.shape}"
        )
    if offsets.shape != counts.shape:
        raise SimulationError(
            f"delays shape {offsets.shape} does not match honest_counts shape "
            f"{counts.shape}"
        )
    if delta < 1:
        raise SimulationError(f"delta must be >= 1, got {delta!r}")
    cap = delta if max_delay is None else int(max_delay)
    if cap < delta:
        raise SimulationError(
            f"max_delay must be >= delta ({delta}), got {max_delay!r}"
        )
    if (offsets < 0).any() or (offsets > cap).any():
        raise SimulationError(f"delays must lie in [0, {cap}]")
    trials, rounds = counts.shape
    mask = xp.zeros((trials, rounds), dtype=policy.mask_dtype(xp))
    # No early exit for short traces: with realized delays below delta an
    # opportunity can complete even when rounds < 2*delta + 1 (the warm-up
    # and completion conditions below make the constant-delta case return
    # all-false there, exactly like the classic mask).
    index = xp.arange(rounds, dtype=index_dtype)
    success = counts > 0
    # Delivery round of each mined block; -1 sentinels keep the running
    # maximum below any real round for silent cells.
    arrival = xp.where(success, index + offsets, -1)
    previous_arrival = xp.maximum_accumulate(arrival, axis=1)
    previous_arrival = xp.concatenate(
        [xp.full((trials, 1), -1, dtype=index_dtype), previous_arrival[:, :-1]],
        axis=1,
    )
    # First success strictly after each round, via a reversed running minimum.
    next_success = xp.where(success, index, rounds)
    next_success = xp.minimum_accumulate(next_success[:, ::-1], axis=1)[:, ::-1]
    next_success = xp.concatenate(
        [next_success[:, 1:], xp.full((trials, 1), rounds, dtype=index_dtype)],
        axis=1,
    )

    completion = index + offsets
    centre = (
        (counts == 1)
        & (previous_arrival < index)
        & (next_success > completion)
        & (index >= delta)
        & (completion <= rounds - 1)
    )
    # Valid centres in one trial complete at distinct rounds (a later centre
    # requires the earlier one's block to have been delivered first), so a
    # plain scatter cannot collide.
    rows, cols = xp.nonzero(centre)
    mask[rows, completion[rows, cols]] = True
    return mask


# ----------------------------------------------------------------------
# Peer-graph topologies
# ----------------------------------------------------------------------
class PeerGraphTopology:
    """A peer-to-peer gossip graph with integer per-edge latencies.

    Parameters
    ----------
    latencies:
        Symmetric ``(nodes, nodes)`` integer matrix; entry ``[i, j] > 0`` is
        the rounds a block takes to cross the edge ``i — j``, ``0`` means no
        edge (the diagonal must be zero).
    spec:
        Optional generator description (kind, sizes, seed) recorded for
        cache keys; when absent, cache keys fall back to a digest of the
        latency matrix itself.

    Blocks propagate by gossip: a node that learns a block at round ``t``
    forwards it on every incident edge, so the block reaches node ``j`` from
    origin ``i`` after the latency-weighted shortest-path distance.  The
    *delivery radius* of a node is the time until a block born there has
    reached every node — the quantity the Δ-delay abstraction upper-bounds.
    """

    def __init__(self, latencies: np.ndarray, spec: Optional[dict] = None):
        matrix = np.asarray(latencies, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise SimulationError(
                f"latencies must be a square matrix, got shape {matrix.shape}"
            )
        if matrix.shape[0] < 2:
            raise SimulationError("a peer graph needs at least 2 nodes")
        if (matrix < 0).any():
            raise SimulationError("edge latencies must be non-negative")
        if not np.array_equal(matrix, matrix.T):
            raise SimulationError("latencies must be symmetric (undirected gossip)")
        if np.diagonal(matrix).any():
            raise SimulationError("the latency diagonal must be zero")
        self.latencies = matrix
        self.spec = dict(spec) if spec is not None else None
        self._distances: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @staticmethod
    def _edge_latencies(
        count: int, latency: int, latency_spread: int, rng: np.random.Generator
    ) -> np.ndarray:
        latency = coerce_positive_int(latency, "latency", error_type=SimulationError)
        if latency_spread < 0 or int(latency_spread) != latency_spread:
            raise SimulationError(
                f"latency_spread must be a non-negative integer, got {latency_spread!r}"
            )
        if latency_spread == 0:
            return np.full(count, latency, dtype=np.int64)
        return rng.integers(latency, latency + latency_spread + 1, size=count)

    @classmethod
    def _from_edges(
        cls,
        nodes: int,
        edges: np.ndarray,
        latency: int,
        latency_spread: int,
        rng: np.random.Generator,
        spec: dict,
    ) -> "PeerGraphTopology":
        matrix = np.zeros((nodes, nodes), dtype=np.int64)
        weights = cls._edge_latencies(len(edges), latency, latency_spread, rng)
        for (a, b), weight in zip(edges, weights):
            matrix[a, b] = weight
            matrix[b, a] = weight
        return cls(matrix, spec=spec)

    @classmethod
    def ring(
        cls,
        nodes: int,
        latency: int = 1,
        latency_spread: int = 0,
        rng: SeedLike = None,
    ) -> "PeerGraphTopology":
        """A cycle of ``nodes`` peers (diameter ``~nodes/2`` — the slow extreme)."""
        nodes = coerce_positive_int(nodes, "nodes", error_type=SimulationError)
        if nodes < 3:
            raise SimulationError(f"a ring needs at least 3 nodes, got {nodes}")
        edges = np.array([(i, (i + 1) % nodes) for i in range(nodes)])
        spec = {
            "kind": "ring",
            "nodes": nodes,
            "latency": int(latency),
            "latency_spread": int(latency_spread),
        }
        return cls._from_edges(
            nodes, edges, latency, latency_spread, resolve_rng(rng), spec
        )

    @classmethod
    def star(
        cls,
        nodes: int,
        latency: int = 1,
        latency_spread: int = 0,
        rng: SeedLike = None,
    ) -> "PeerGraphTopology":
        """A hub-and-spoke graph (diameter 2 — the fast, centralised extreme)."""
        nodes = coerce_positive_int(nodes, "nodes", error_type=SimulationError)
        if nodes < 2:
            raise SimulationError(f"a star needs at least 2 nodes, got {nodes}")
        edges = np.array([(0, i) for i in range(1, nodes)])
        spec = {
            "kind": "star",
            "nodes": nodes,
            "latency": int(latency),
            "latency_spread": int(latency_spread),
        }
        return cls._from_edges(
            nodes, edges, latency, latency_spread, resolve_rng(rng), spec
        )

    @classmethod
    def random_regular(
        cls,
        nodes: int,
        degree: int,
        latency: int = 1,
        latency_spread: int = 0,
        rng: SeedLike = None,
        max_attempts: int = 200,
    ) -> "PeerGraphTopology":
        """A random ``degree``-regular graph via stub matching with rejection.

        Requires ``nodes * degree`` even and ``degree < nodes``; retries the
        pairing until it is simple (no loops or parallel edges) and
        connected, raising after ``max_attempts`` failures.
        """
        nodes = coerce_positive_int(nodes, "nodes", error_type=SimulationError)
        degree = coerce_positive_int(degree, "degree", error_type=SimulationError)
        if degree >= nodes:
            raise SimulationError(
                f"degree {degree} must be smaller than the node count {nodes}"
            )
        if (nodes * degree) % 2 != 0:
            raise SimulationError(
                f"nodes * degree must be even, got {nodes} * {degree}"
            )
        generator = resolve_rng(rng)
        for _ in range(max_attempts):
            # Configuration-model stub matching with pairwise retry: invalid
            # pairs (loops / duplicates) put their stubs back and only those
            # are re-shuffled — unlike whole-pairing rejection, this stays
            # fast at high degree, where a fully simple pairing is
            # exponentially rare.
            edges: set = set()
            stubs = np.repeat(np.arange(nodes), degree).tolist()
            stalls = 0
            while stubs and stalls <= 50:
                generator.shuffle(stubs)
                leftover: List[int] = []
                iterator = iter(stubs)
                for a, b in zip(iterator, iterator):
                    key = (min(a, b), max(a, b))
                    if a == b or key in edges:
                        leftover.append(a)
                        leftover.append(b)
                    else:
                        edges.add(key)
                stalls = stalls + 1 if len(leftover) == len(stubs) else 0
                stubs = leftover
            if stubs:
                continue
            spec = {
                "kind": "random_regular",
                "nodes": nodes,
                "degree": degree,
                "latency": int(latency),
                "latency_spread": int(latency_spread),
            }
            topology = cls._from_edges(
                nodes, np.array(sorted(edges)), latency, latency_spread, generator, spec
            )
            if topology.is_connected:
                return topology
        raise SimulationError(
            f"failed to draw a connected simple {degree}-regular graph on "
            f"{nodes} nodes in {max_attempts} attempts"
        )

    @classmethod
    def erdos_renyi(
        cls,
        nodes: int,
        edge_probability: float,
        latency: int = 1,
        latency_spread: int = 0,
        rng: SeedLike = None,
        max_attempts: int = 200,
    ) -> "PeerGraphTopology":
        """An Erdős–Rényi ``G(nodes, edge_probability)`` graph, redrawn until connected."""
        nodes = coerce_positive_int(nodes, "nodes", error_type=SimulationError)
        if not (0.0 < edge_probability <= 1.0):
            raise SimulationError(
                f"edge_probability must lie in (0, 1], got {edge_probability!r}"
            )
        generator = resolve_rng(rng)
        upper = np.triu_indices(nodes, k=1)
        for _ in range(max_attempts):
            present = generator.random(len(upper[0])) < edge_probability
            edges = np.column_stack([upper[0][present], upper[1][present]])
            if len(edges) == 0:
                continue
            spec = {
                "kind": "erdos_renyi",
                "nodes": nodes,
                "edge_probability": float(edge_probability),
                "latency": int(latency),
                "latency_spread": int(latency_spread),
            }
            topology = cls._from_edges(
                nodes, edges, latency, latency_spread, generator, spec
            )
            if topology.is_connected:
                return topology
        raise SimulationError(
            f"failed to draw a connected G({nodes}, {edge_probability}) graph "
            f"in {max_attempts} attempts; raise edge_probability"
        )

    # ------------------------------------------------------------------
    # Gossip propagation
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of peers in the graph."""
        return self.latencies.shape[0]

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return int(np.count_nonzero(self.latencies) // 2)

    @property
    def degrees(self) -> np.ndarray:
        """Per-node edge counts."""
        return np.count_nonzero(self.latencies, axis=1)

    def distances(self) -> np.ndarray:
        """All-pairs gossip arrival times (the vectorized kernel), cached.

        One min-plus relaxation per pivot node: ``D <- min(D, D[:,k] + D[k,:])``
        — Floyd–Warshall with the inner two loops as one array broadcast,
        which is what the ≥5x benchmark gate measures against the per-source
        Python reference.  The kernel runs on the active backend; the cached
        matrix lives on the host (the graph-analysis helpers built on it —
        radii, diameters, quantiles — are host consumers).
        """
        if self._distances is None:
            _METRICS.increment("engine.topology.distance_computations")
            with _TRACE.span("topology.distances", nodes=self.n_nodes):
                xp = get_backend()
                latencies = xp.from_host(self.latencies)
                distance = xp.where(latencies > 0, latencies, _UNREACHED)
                diagonal = xp.arange(self.n_nodes)
                distance[diagonal, diagonal] = 0
                for pivot in range(self.n_nodes):
                    xp.minimum(
                        distance,
                        distance[:, pivot, None] + distance[None, pivot, :],
                        out=distance,
                    )
                self._distances = xp.to_host(distance)
        return self._distances

    def distances_reference(self) -> np.ndarray:
        """Per-source Dijkstra in pure Python — correctness/benchmark baseline."""
        nodes = self.n_nodes
        neighbours: List[List[Tuple[int, int]]] = [[] for _ in range(nodes)]
        rows, cols = np.nonzero(self.latencies)
        for a, b in zip(rows, cols):
            neighbours[int(a)].append((int(b), int(self.latencies[a, b])))
        distance = np.full((nodes, nodes), _UNREACHED, dtype=np.int64)
        for source in range(nodes):
            best = distance[source]
            best[source] = 0
            frontier = [(0, source)]
            while frontier:
                reached_at, node = heapq.heappop(frontier)
                if reached_at > best[node]:
                    continue
                for neighbour, weight in neighbours[node]:
                    candidate = reached_at + weight
                    if candidate < best[neighbour]:
                        best[neighbour] = candidate
                        heapq.heappush(frontier, (candidate, neighbour))
        return distance

    @property
    def is_connected(self) -> bool:
        """Whether gossip from any node eventually reaches every node."""
        return bool((self.distances() < _UNREACHED).all())

    def delivery_radii(self) -> np.ndarray:
        """Per-node rounds until a block born there has flooded the graph.

        Raises :class:`SimulationError` on disconnected graphs, where some
        blocks would never be delivered — outside the model of Section III.
        """
        distance = self.distances()
        if (distance >= _UNREACHED).any():
            raise SimulationError(
                "the peer graph is disconnected; gossip cannot deliver every "
                "block to every honest miner"
            )
        return distance.max(axis=1)

    @property
    def diameter(self) -> int:
        """Worst-case gossip delivery time over all origins."""
        return int(self.delivery_radii().max())

    def effective_delta(self, quantile: float = 0.95) -> int:
        """Empirical-quantile Δ estimate for this topology.

        The ``quantile`` of the per-origin delivery radii (origins uniform,
        matching :class:`PeerGraphDelayModel`), rounded up and floored at 1:
        the fixed Δ a worst-case analysis would need so that at least this
        fraction of blocks obey the bound.  ``quantile=1.0`` gives the
        diameter — the exact Δ under which fixed-delay predictions are a
        guaranteed bound for the topology.
        """
        if not (0.0 < quantile <= 1.0):
            raise SimulationError(
                f"quantile must lie in (0, 1], got {quantile!r}"
            )
        radii = self.delivery_radii()
        return max(int(math.ceil(float(np.quantile(radii, quantile)))), 1)

    def effective_parameters(
        self, params: ProtocolParameters, quantile: float = 0.95
    ) -> ProtocolParameters:
        """``params`` with Δ replaced by this topology's effective Δ.

        The result lives in the analytical world of ``core.bounds`` /
        ``core.lemmas``: its ``convergence_opportunity_probability`` is the
        fixed-delay prediction matched to realistic propagation.  The
        estimate is capped at ``params.delta`` because the delay models cap
        every draw there (the adversary's guarantee still binds).
        """
        return params.with_delta(min(self.effective_delta(quantile), params.delta))

    def payload(self) -> dict:
        """Cache-key description: generator spec plus the wiring digest.

        The digest of the realized latency matrix is always included — a
        generator spec alone does not determine the wiring (the RNG that
        drew the edges is not part of it), and two differently-wired graphs
        must never collide on an :class:`ExperimentRunner` cache key.
        """
        payload = dict(self.spec) if self.spec is not None else {"kind": "explicit"}
        payload["nodes"] = self.n_nodes
        payload["digest"] = hashlib.sha256(self.latencies.tobytes()).hexdigest()
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = (self.spec or {}).get("kind", "explicit")
        return (
            f"PeerGraphTopology(kind={kind!r}, nodes={self.n_nodes}, "
            f"edges={self.edge_count})"
        )


# ----------------------------------------------------------------------
# Delay models
# ----------------------------------------------------------------------
class DelayModel:
    """Base class: per-block all-honest-delivery offsets, capped at Δ.

    Subclasses implement :meth:`draw_delays`, returning a ``(trials,
    rounds)`` ``int64`` tensor of delivery offsets in ``[0, delta]`` —
    entry ``[t, r]`` is the rounds until the honest block mined at round
    ``r`` of trial ``t`` is visible to every honest miner.  ``trivial``
    marks models that always return the constant Δ and consume no entropy,
    letting the engines keep their legacy bit-exact fast path.
    """

    name: str = "delay_model"
    trivial: bool = False

    def draw_delays(
        self, trials: int, rounds: int, delta: int, rng: np.random.Generator
    ) -> np.ndarray:
        raise NotImplementedError

    def delay_cap(self, delta: int, rounds: Optional[int] = None) -> int:
        """Largest offset :meth:`draw_delays` can produce for this Δ.

        Static models honour the network guarantee, so the cap is Δ itself.
        Time-varying models (:mod:`repro.simulation.dynamics`) may exceed it
        during adversarial windows; the engines size their delivery
        pipelines and validation bounds from this value.
        """
        return int(delta)

    def payload(self) -> Dict[str, object]:
        """Primary fields as a plain dict (cache keys / reproduction)."""
        return {"name": self.name}

    def describe(self) -> str:
        return self.name

    @staticmethod
    def _check_shape(trials: int, rounds: int, delta: int) -> None:
        if trials < 1 or rounds < 1:
            raise SimulationError("trials and rounds must be positive")
        if delta < 1:
            raise SimulationError(f"delta must be >= 1, got {delta!r}")


class FixedDeltaDelayModel(DelayModel):
    """Every block takes exactly Δ rounds — the paper's worst case.

    This is the model the whole pre-topology stack hard-codes, so engines
    treat it as a no-op: no entropy is consumed and the legacy code paths
    run unchanged, which is what makes ``delay_model="fixed_delta"``
    bit-identical to the pre-topology engines.
    """

    name = "fixed_delta"
    trivial = True

    def draw_delays(
        self, trials: int, rounds: int, delta: int, rng: np.random.Generator
    ):
        self._check_shape(trials, rounds, delta)
        xp = get_backend()
        return xp.full(
            (trials, rounds), delta, dtype=get_dtype_policy().index_dtype(xp)
        )


class UniformDelayModel(DelayModel):
    """Delays uniform on the integers ``[low, high]`` (``high=None`` → Δ)."""

    name = "uniform"

    def __init__(self, low: int = 0, high: Optional[int] = None):
        if low < 0 or int(low) != low:
            raise SimulationError(f"low must be a non-negative integer, got {low!r}")
        if high is not None and (high < low or int(high) != high):
            raise SimulationError(
                f"high must be an integer >= low ({low}), got {high!r}"
            )
        self.low = int(low)
        self.high = None if high is None else int(high)

    def draw_delays(
        self, trials: int, rounds: int, delta: int, rng: np.random.Generator
    ):
        self._check_shape(trials, rounds, delta)
        high = delta if self.high is None else min(self.high, delta)
        if self.low > high:
            raise SimulationError(
                f"uniform delay support [{self.low}, {high}] is empty under "
                f"the Delta cap {delta}"
            )
        xp = get_backend()
        # The host draw's default dtype is int64, matching the historical
        # explicit dtype, so the bit stream is unchanged.
        draws = xp.integers(rng, self.low, high + 1, (trials, rounds))
        return xp.asarray(draws, dtype=get_dtype_policy().index_dtype(xp))

    def payload(self) -> Dict[str, object]:
        return {"name": self.name, "low": self.low, "high": self.high}


class TruncatedGeometricDelayModel(DelayModel):
    """Geometric delays truncated at Δ: gossip-like short tails.

    Each delay is ``min(G - 1, delta)`` with ``G ~ Geometric(q)`` (support
    1, 2, ...), so ``q`` is the per-round probability that propagation
    completes: large ``q`` means most blocks arrive almost immediately and
    only a thin tail ever feels the Δ cap.
    """

    name = "truncated_geometric"

    def __init__(self, success_probability: float = 0.5):
        if not (0.0 < success_probability <= 1.0):
            raise SimulationError(
                "success_probability must lie in (0, 1], got "
                f"{success_probability!r}"
            )
        self.success_probability = float(success_probability)

    def draw_delays(
        self, trials: int, rounds: int, delta: int, rng: np.random.Generator
    ):
        self._check_shape(trials, rounds, delta)
        xp = get_backend()
        index_dtype = get_dtype_policy().index_dtype(xp)
        draws = xp.geometric(rng, self.success_probability, (trials, rounds)) - 1
        return xp.minimum(xp.asarray(draws, dtype=index_dtype), delta)

    def payload(self) -> Dict[str, object]:
        return {"name": self.name, "success_probability": self.success_probability}


class PeerGraphDelayModel(DelayModel):
    """Delays from gossip diffusion over a :class:`PeerGraphTopology`.

    Each block originates at a uniformly random peer; its delivery offset is
    that origin's delivery radius (the gossip flood time to the whole
    graph), capped at Δ.  The radii are computed once with the vectorized
    kernel and sampled by fancy indexing — the path the benchmark gate
    holds to ≥5x over :func:`reference_draw_delays`.
    """

    name = "peer_graph"

    def __init__(self, topology: PeerGraphTopology):
        if not isinstance(topology, PeerGraphTopology):
            raise SimulationError(
                f"topology must be a PeerGraphTopology, got {topology!r}"
            )
        self.topology = topology

    def draw_delays(
        self, trials: int, rounds: int, delta: int, rng: np.random.Generator
    ):
        self._check_shape(trials, rounds, delta)
        xp = get_backend()
        index_dtype = get_dtype_policy().index_dtype(xp)
        radii = xp.minimum(
            xp.asarray(self.topology.delivery_radii(), dtype=index_dtype), delta
        )
        sources = xp.integers(rng, 0, self.topology.n_nodes, (trials, rounds))
        return radii[sources]

    def payload(self) -> Dict[str, object]:
        return {"name": self.name, "topology": self.topology.payload()}

    def describe(self) -> str:
        return f"{self.name}({self.topology!r})"


def reference_draw_delays(
    topology: PeerGraphTopology,
    trials: int,
    rounds: int,
    delta: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-block reference implementation of :class:`PeerGraphDelayModel`.

    Samples the same origin stream, then recomputes each block's delivery
    radius with a fresh per-source Dijkstra — the honest scalar baseline
    for the vectorized kernel's benchmark gate, and (given the same
    generator state) exactly equal to the vectorized draw.
    """
    sources = rng.integers(0, topology.n_nodes, size=(trials, rounds))
    nodes = topology.n_nodes
    neighbours: List[List[Tuple[int, int]]] = [[] for _ in range(nodes)]
    rows, cols = np.nonzero(topology.latencies)
    for a, b in zip(rows, cols):
        neighbours[int(a)].append((int(b), int(topology.latencies[a, b])))
    delays = np.empty((trials, rounds), dtype=np.int64)
    for trial in range(trials):
        for round_index in range(rounds):
            source = int(sources[trial, round_index])
            best = {source: 0}
            frontier = [(0, source)]
            radius = 0
            while frontier:
                reached_at, node = heapq.heappop(frontier)
                if reached_at > best.get(node, int(_UNREACHED)):
                    continue
                radius = max(radius, reached_at)
                for neighbour, weight in neighbours[node]:
                    candidate = reached_at + weight
                    if candidate < best.get(neighbour, int(_UNREACHED)):
                        best[neighbour] = candidate
                        heapq.heappush(frontier, (candidate, neighbour))
            if len(best) < nodes:
                raise SimulationError(
                    "the peer graph is disconnected; gossip cannot deliver "
                    "every block to every honest miner"
                )
            delays[trial, round_index] = min(radius, delta)
    return delays


# ----------------------------------------------------------------------
# Delay-model registry
# ----------------------------------------------------------------------
_DELAY_MODEL_REGISTRY: Dict[str, Callable[[], DelayModel]] = {}


def register_delay_model(
    name: str, factory: Callable[[], DelayModel], overwrite: bool = False
) -> None:
    """Register a zero-argument delay-model factory under ``name``."""
    if not name:
        raise SimulationError("delay model name must be non-empty")
    if name in _DELAY_MODEL_REGISTRY and not overwrite:
        raise SimulationError(
            f"delay model {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _DELAY_MODEL_REGISTRY[name] = factory


def get_delay_model(model: Union[str, DelayModel]) -> DelayModel:
    """Resolve a registry name into a model (instances pass through)."""
    if isinstance(model, DelayModel):
        return model
    try:
        factory = _DELAY_MODEL_REGISTRY[model]
    except KeyError:
        known = ", ".join(sorted(_DELAY_MODEL_REGISTRY))
        raise SimulationError(
            f"unknown delay model {model!r}; registered models: {known}"
        ) from None
    return factory()


def resolve_delay_model(
    model: Union[None, str, DelayModel],
) -> Optional[DelayModel]:
    """``None`` passes through (legacy behaviour); otherwise :func:`get_delay_model`."""
    if model is None:
        return None
    return get_delay_model(model)


def list_delay_models() -> List[str]:
    """Names of all registered delay models, sorted."""
    return sorted(_DELAY_MODEL_REGISTRY)


def delay_model_specs() -> Dict[str, Dict[str, object]]:
    """Name → default-instance payload for every registered delay model.

    The registry counterpart of :func:`list_delay_models` with one level
    more detail — sweep scripts can enumerate models *and* their default
    parameterisations without touching the private registry dict or
    instantiating models themselves.
    """
    return {name: get_delay_model(name).payload() for name in list_delay_models()}


register_delay_model("fixed_delta", FixedDeltaDelayModel)
register_delay_model("uniform", UniformDelayModel)
register_delay_model("truncated_geometric", TruncatedGeometricDelayModel)
# The registry default is a small, deterministic well-connected graph so the
# name works out of the box; real studies construct their own topology.
register_delay_model(
    "peer_graph",
    lambda: PeerGraphDelayModel(PeerGraphTopology.random_regular(32, 4, rng=0)),
)


# ----------------------------------------------------------------------
# Heterogeneous mining power
# ----------------------------------------------------------------------
class MiningPowerProfile:
    """Per-miner success probabilities for the honest population and adversary.

    Parameters
    ----------
    honest_p:
        Per-honest-miner per-round success probabilities, each in ``(0, 1)``.
    adversary_p:
        Per-corrupted-miner probabilities (may be empty when ``nu * n``
        rounds to zero).

    The model of Section III gives every miner the same hardness ``p``; a
    profile relaxes that to arbitrary ``p_i`` while the *aggregate* rates
    the analysis layer consumes stay pinned:
    :meth:`validate_against` requires ``sum(honest_p) = p * honest_miners``
    and ``sum(adversary_p) = p * adversary_miners`` (the expected block
    counts per round on each side, i.e. the simulation-side ``alpha``-sum
    and ``beta`` of Eqs. 27/41).  Per-round success counts then follow a
    Poisson-binomial law whose exact no-block/one-block probabilities are
    exposed as :attr:`alpha_bar` / :attr:`alpha` / :attr:`alpha1`.
    """

    def __init__(self, honest_p: Sequence[float], adversary_p: Sequence[float] = ()):
        honest = np.asarray(honest_p, dtype=np.float64)
        adversary = np.asarray(adversary_p, dtype=np.float64)
        if honest.ndim != 1 or adversary.ndim != 1:
            raise SimulationError("success-probability vectors must be 1-dimensional")
        if honest.size < 1:
            raise SimulationError("at least one honest miner is required")
        for side, values in (("honest", honest), ("adversary", adversary)):
            if values.size and not ((values > 0.0) & (values < 1.0)).all():
                raise SimulationError(
                    f"{side} per-miner probabilities must lie in (0, 1)"
                )
        self.honest_p = honest
        self.adversary_p = adversary

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, params: ProtocolParameters) -> "MiningPowerProfile":
        """The identical-miner profile the paper assumes (p_i = p)."""
        honest = max(int(round(params.honest_count)), 1)
        adversary = int(round(params.adversary_count))
        return cls(
            np.full(honest, params.p), np.full(adversary, params.p)
        )

    @classmethod
    def from_weights(
        cls,
        params: ProtocolParameters,
        honest_weights: Sequence[float],
        adversary_weights: Optional[Sequence[float]] = None,
    ) -> "MiningPowerProfile":
        """Scale relative power weights into per-miner probabilities.

        Weights are normalised so each side's probabilities sum to the
        aggregate the analysis expects (``p`` times that side's miner
        count), preserving the weight ratios — a miner with twice the
        weight mines twice as often.
        """

        def _scale(weights: Sequence[float], count_name: str) -> np.ndarray:
            values = np.asarray(weights, dtype=np.float64)
            if values.ndim != 1 or values.size < 1:
                raise SimulationError(f"{count_name} weights must be a 1-D sequence")
            if not (values > 0.0).all():
                raise SimulationError(f"{count_name} weights must be positive")
            scaled = values / values.sum() * (params.p * values.size)
            if not (scaled < 1.0).all():
                raise SimulationError(
                    f"{count_name} weights are too skewed: some per-miner "
                    "probability reaches 1"
                )
            return scaled

        honest = _scale(honest_weights, "honest")
        if adversary_weights is None:
            adversary = np.full(int(round(params.adversary_count)), params.p)
        else:
            adversary = _scale(adversary_weights, "adversary")
        profile = cls(honest, adversary if adversary.size else ())
        profile.validate_against(params)
        return profile

    # ------------------------------------------------------------------
    # Validation against the analytical parameter point
    # ------------------------------------------------------------------
    @property
    def honest_miners(self) -> int:
        return int(self.honest_p.size)

    @property
    def adversary_miners(self) -> int:
        return int(self.adversary_p.size)

    @property
    def expected_honest_rate(self) -> float:
        """Expected honest blocks per round, ``sum(p_i)``."""
        return float(self.honest_p.sum())

    @property
    def expected_adversary_rate(self) -> float:
        """Expected adversarial blocks per round (the profile's ``beta``)."""
        return float(self.adversary_p.sum())

    def validate_against(
        self, params: ProtocolParameters, rtol: float = 1e-9
    ) -> None:
        """Require the profile to match ``params``' population and rates.

        Checks the miner counts the engines will simulate and the aggregate
        per-round expectations ``sum(p_i) = p * m`` on each side; raises
        :class:`SimulationError` on any mismatch, so analysis-layer
        predictions (``beta``, Eq. 41 rates) remain comparable.
        """
        honest = max(int(round(params.honest_count)), 1)
        adversary = int(round(params.adversary_count))
        if self.honest_miners != honest:
            raise SimulationError(
                f"profile has {self.honest_miners} honest miners but params "
                f"imply {honest}"
            )
        if self.adversary_miners != adversary:
            raise SimulationError(
                f"profile has {self.adversary_miners} adversarial miners but "
                f"params imply {adversary}"
            )
        expected_honest = params.p * honest
        if not math.isclose(
            self.expected_honest_rate, expected_honest, rel_tol=rtol, abs_tol=0.0
        ):
            raise SimulationError(
                f"honest aggregate rate {self.expected_honest_rate:.6e} does "
                f"not match p * honest miners = {expected_honest:.6e}"
            )
        expected_adversary = params.p * adversary
        if not math.isclose(
            self.expected_adversary_rate,
            expected_adversary,
            rel_tol=rtol,
            abs_tol=1e-300,
        ):
            raise SimulationError(
                f"adversarial aggregate rate {self.expected_adversary_rate:.6e} "
                f"does not match p * adversarial miners = {expected_adversary:.6e}"
            )

    # ------------------------------------------------------------------
    # Poisson-binomial analogues of Table I
    # ------------------------------------------------------------------
    @property
    def log_alpha_bar(self) -> float:
        """``ln P(no honest block) = sum ln(1 - p_i)`` (heterogeneous Eq. 8)."""
        return float(np.log1p(-self.honest_p).sum())

    @property
    def alpha_bar(self) -> float:
        """Probability that no honest miner mines a block in one round."""
        return math.exp(self.log_alpha_bar)

    @property
    def alpha(self) -> float:
        """Probability that some honest miner mines a block in one round."""
        return -math.expm1(self.log_alpha_bar)

    @property
    def alpha1(self) -> float:
        """Probability that exactly one honest miner mines in one round.

        ``alpha_bar * sum(p_i / (1 - p_i))`` — the Poisson-binomial
        one-success mass.  At a fixed aggregate rate, skewing the power
        lowers ``alpha_bar`` (AM-GM on the ``1 - p_i``) relative to the
        identical-miner binomial, shifting the convergence-opportunity rate
        of Eq. 44.
        """
        return self.alpha_bar * float((self.honest_p / (1.0 - self.honest_p)).sum())

    def mining_probabilities(self):
        """The analytical Poisson-binomial bundle for this profile.

        Returns a
        :class:`~repro.core.probabilities.HeterogeneousMiningProbabilities`
        whose ``convergence_opportunity(delta)`` is the heterogeneous-power
        Eq. (44) prediction a batch run with ``power=`` should approach —
        the analysis-side counterpart of the :attr:`alpha` / :attr:`alpha1`
        properties above, with the full pmf available too.
        """
        from ..core.probabilities import HeterogeneousMiningProbabilities

        return HeterogeneousMiningProbabilities(self.honest_p, self.adversary_p)

    def payload(self) -> Dict[str, object]:
        """Cache-key description: digests of both probability vectors."""
        return {
            "honest": hashlib.sha256(self.honest_p.tobytes()).hexdigest(),
            "adversary": hashlib.sha256(self.adversary_p.tobytes()).hexdigest(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MiningPowerProfile(honest={self.honest_miners}, "
            f"adversary={self.adversary_miners}, "
            f"rate={self.expected_honest_rate:.3e}/{self.expected_adversary_rate:.3e})"
        )
