"""The Δ-delay asynchronous network (Section III, adversary capability 1).

The adversary may delay and reorder every message by up to Δ rounds but cannot
modify or drop it.  In this simulator a "message" is the announcement of a
block; the network tracks, for each in-flight block, the round at which it
becomes visible to *all* honest miners, and delivers it at the start of that
round.

The adversary chooses the delay (per block, up to Δ) through its strategy; the
network enforces the Δ cap, which is exactly the guarantee the model gives the
honest parties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SimulationError
from ..params import coerce_positive_int
from .block import Block

__all__ = ["InFlightMessage", "DeltaDelayNetwork"]


@dataclass(frozen=True)
class InFlightMessage:
    """A block announcement travelling through the network."""

    block: Block
    sent_round: int
    delivery_round: int


class DeltaDelayNetwork:
    """Message scheduling with adversarially chosen delays capped at Δ rounds.

    Parameters
    ----------
    delta:
        The maximum delay Δ the adversary may impose.

    Notes
    -----
    A block sent at round ``r`` with delay ``d`` (``0 <= d <= Δ``) becomes part
    of every honest miner's view at the start of round ``r + d``.  A delay of
    0 models same-round delivery (the block is known to everyone before the
    next round's mining); the paper's convergence-opportunity argument only
    relies on the upper bound Δ, which the network enforces.
    """

    def __init__(self, delta: int):
        # Same coercion rule as ProtocolParameters._validate, so the network
        # accepts exactly the delta values a parameter point can carry.
        self.delta = coerce_positive_int(
            delta, "delta", error_type=SimulationError
        )
        self._queue: Dict[int, List[InFlightMessage]] = {}
        self._sent_count = 0
        self._delivered_count = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def broadcast(self, block: Block, sent_round: int, delay: int) -> InFlightMessage:
        """Send a block announcement with an adversary-chosen delay.

        Raises :class:`SimulationError` if the delay is negative or exceeds Δ
        (the adversary cannot delay beyond the model's cap).
        """
        if sent_round < 0:
            raise SimulationError("sent_round must be non-negative")
        if not (0 <= delay <= self.delta):
            raise SimulationError(
                f"delay must lie in [0, {self.delta}], got {delay!r}"
            )
        message = InFlightMessage(
            block=block, sent_round=sent_round, delivery_round=sent_round + delay
        )
        self._queue.setdefault(message.delivery_round, []).append(message)
        self._sent_count += 1
        return message

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def deliver(self, current_round: int) -> List[Block]:
        """Blocks that become visible to all honest miners at ``current_round``.

        Delivery is in (sent_round, block_id) order within the round, which
        keeps runs reproducible regardless of insertion order.
        """
        messages = self._queue.pop(current_round, [])
        messages.sort(key=lambda message: (message.sent_round, message.block.block_id))
        self._delivered_count += len(messages)
        return [message.block for message in messages]

    def pending(self) -> List[InFlightMessage]:
        """All messages still in flight, ordered by delivery round."""
        in_flight: List[InFlightMessage] = []
        for delivery_round in sorted(self._queue):
            in_flight.extend(self._queue[delivery_round])
        return in_flight

    def pending_count(self) -> int:
        """Number of messages still in flight."""
        return sum(len(messages) for messages in self._queue.values())

    @property
    def sent_count(self) -> int:
        """Total number of broadcasts so far."""
        return self._sent_count

    @property
    def delivered_count(self) -> int:
        """Total number of deliveries so far."""
        return self._delivered_count
