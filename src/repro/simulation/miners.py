"""Honest miner views.

All honest miners run the same longest-chain rule, so their behaviour differs
only through their *views*: the set of blocks they have received so far.  In
the Δ-delay model a block broadcast at round ``r`` is guaranteed to be in every
honest view by round ``r + Δ``, but the miner that produced a block knows it
immediately.

The simulator keeps one shared :class:`HonestPopulation` rather than ``mu n``
individual miner objects: the population tracks the public view (blocks every
honest miner has received) plus the per-creator knowledge of not-yet-delivered
own blocks.  This is behaviourally equivalent to individual miners under the
model's symmetry (identical computing power, identical rule) and keeps
simulations with ``n = 1e5`` miners cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from .block import Block
from .blocktree import BlockTree

__all__ = ["HonestPopulation"]


class HonestPopulation:
    """The honest miners' shared view plus per-creator private knowledge.

    Parameters
    ----------
    count:
        Number of honest miners (``mu * n`` rounded to an integer).
    """

    def __init__(self, count: int):
        if count < 1:
            raise SimulationError(f"honest miner count must be >= 1, got {count!r}")
        self.count = int(count)
        self.public_view = BlockTree()
        # Blocks mined by an honest miner but not yet delivered to everyone,
        # keyed by the creator's miner id.  The creator mines on top of its own
        # latest undelivered block, everyone else on the public best tip.
        self._own_undelivered: Dict[int, List[Block]] = {}

    # ------------------------------------------------------------------
    # View updates
    # ------------------------------------------------------------------
    def deliver(self, blocks: List[Block]) -> None:
        """Incorporate blocks that the network has delivered to every honest miner."""
        for block in sorted(blocks, key=lambda item: (item.height, item.block_id)):
            self.public_view.add(block)
            if block.honest and block.miner_id in self._own_undelivered:
                pending = self._own_undelivered[block.miner_id]
                self._own_undelivered[block.miner_id] = [
                    item for item in pending if item.block_id != block.block_id
                ]
                if not self._own_undelivered[block.miner_id]:
                    del self._own_undelivered[block.miner_id]

    def record_own_block(self, block: Block) -> None:
        """Record that a creator knows its own freshly mined block immediately."""
        if not block.honest:
            raise SimulationError("record_own_block expects an honest block")
        self._own_undelivered.setdefault(block.miner_id, []).append(block)

    # ------------------------------------------------------------------
    # Mining decisions
    # ------------------------------------------------------------------
    def mining_parent_for(self, miner_id: int) -> Tuple[int, int]:
        """The ``(parent_id, parent_height)`` miner ``miner_id`` extends this round.

        The creator of undelivered blocks extends its own latest block when
        that private knowledge is at least as high as the public best tip;
        otherwise everyone extends the public best tip.
        """
        public_tip = self.public_view.best_tip
        public_height = self.public_view.height
        own = self._own_undelivered.get(miner_id)
        if own:
            latest = max(own, key=lambda item: (item.height, item.block_id))
            if latest.height >= public_height:
                return latest.block_id, latest.height
        return public_tip, public_height

    def public_chain(self) -> List[int]:
        """The longest chain of the public view (root-first block ids)."""
        return self.public_view.longest_chain()

    @property
    def public_height(self) -> int:
        """Height of the public longest chain."""
        return self.public_view.height

    def undelivered_count(self) -> int:
        """Number of honest blocks known only to their creators so far."""
        return sum(len(blocks) for blocks in self._own_undelivered.values())
