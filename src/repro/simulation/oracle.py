"""The random-oracle mining model of Section III.

Mining is abstracted as queries to a random function ``H``: each honest miner
makes exactly one query per round and succeeds independently with probability
``p``; the adversary controlling ``q`` corrupted miners makes ``q`` sequential
queries.  Verification queries are free, so only the success draws matter for
the analysis and for this simulator.

The oracle is the single source of randomness for mining, which keeps the
simulation reproducible: one :class:`numpy.random.Generator` drives all draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import SimulationError

__all__ = ["MiningOracle"]


class MiningOracle:
    """Per-round proof-of-work draws for honest miners and the adversary.

    Parameters
    ----------
    hardness:
        The per-query success probability ``p``.
    rng:
        Random generator driving all draws.
    """

    def __init__(self, hardness: float, rng: np.random.Generator):
        if not (0.0 < hardness < 1.0):
            raise SimulationError(f"hardness must lie in (0, 1), got {hardness!r}")
        self.hardness = hardness
        self._rng = rng
        self._honest_queries = 0
        self._adversary_queries = 0

    # ------------------------------------------------------------------
    # Draws
    # ------------------------------------------------------------------
    def honest_successes(self, miner_count: int) -> int:
        """Number of honest miners whose single query succeeds this round.

        Honest queries are parallel: the per-round count is a single
        ``Binomial(miner_count, p)`` draw (Eq. 41 of the paper).
        """
        if miner_count < 0:
            raise SimulationError("miner_count must be non-negative")
        self._honest_queries += miner_count
        if miner_count == 0:
            return 0
        return int(self._rng.binomial(miner_count, self.hardness))

    def adversary_successes(self, miner_count: int) -> int:
        """Number of successful adversarial queries this round.

        The adversary's queries are sequential, but each is an independent
        Bernoulli(p), so the per-round count is likewise binomial; the
        *ordering* freedom only matters for how the adversary uses the blocks,
        which is the strategy's concern, not the oracle's.
        """
        if miner_count < 0:
            raise SimulationError("miner_count must be non-negative")
        self._adversary_queries += miner_count
        if miner_count == 0:
            return 0
        return int(self._rng.binomial(miner_count, self.hardness))

    def honest_success_positions(self, miner_count: int) -> List[int]:
        """Indices of the honest miners that succeed this round.

        Used when block attribution to specific miner ids matters (e.g. for
        chain-quality accounting); equivalent in distribution to
        :meth:`honest_successes`.
        """
        if miner_count < 0:
            raise SimulationError("miner_count must be non-negative")
        self._honest_queries += miner_count
        if miner_count == 0:
            return []
        draws = self._rng.random(miner_count) < self.hardness
        return [int(index) for index in np.nonzero(draws)[0]]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def honest_queries(self) -> int:
        """Total honest oracle queries made so far."""
        return self._honest_queries

    @property
    def adversary_queries(self) -> int:
        """Total adversarial oracle queries made so far."""
        return self._adversary_queries
