"""The random-oracle mining model of Section III.

Mining is abstracted as queries to a random function ``H``: each honest miner
makes exactly one query per round and succeeds independently with probability
``p``; the adversary controlling ``q`` corrupted miners makes ``q`` sequential
queries.  Verification queries are free, so only the success draws matter for
the analysis and for this simulator.

The oracle is the single source of randomness for mining, which keeps the
simulation reproducible: one :class:`numpy.random.Generator` drives all draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from .topology import MiningPowerProfile

__all__ = ["MiningOracle", "ScriptedMiningOracle"]


class MiningOracle:
    """Per-round proof-of-work draws for honest miners and the adversary.

    Parameters
    ----------
    hardness:
        The per-query success probability ``p``.
    rng:
        Random generator driving all draws.
    power:
        Optional :class:`~repro.simulation.topology.MiningPowerProfile`
        giving each miner its own success probability ``p_i``.  Per-round
        counts then follow the Poisson-binomial law (one Bernoulli per
        miner) instead of ``Binomial(m, p)``; the profile's aggregate rates
        are validated by the engines against the parameter point, so the
        analysis-layer expectations stay comparable.  ``None`` keeps the
        paper's identical-miner model and the historical draw protocol
        bit-for-bit.
    """

    def __init__(
        self,
        hardness: float,
        rng: np.random.Generator,
        power: Optional[MiningPowerProfile] = None,
    ):
        if not (0.0 < hardness < 1.0):
            raise SimulationError(f"hardness must lie in (0, 1), got {hardness!r}")
        self.hardness = hardness
        self.power = power
        self._rng = rng
        self._honest_queries = 0
        self._adversary_queries = 0

    def _check_profile_count(self, side: str, miner_count: int) -> None:
        expected = (
            self.power.honest_miners if side == "honest" else self.power.adversary_miners
        )
        if miner_count != expected:
            raise SimulationError(
                f"power profile covers {expected} {side} miners, "
                f"got miner_count={miner_count}"
            )

    # ------------------------------------------------------------------
    # Draws
    # ------------------------------------------------------------------
    def honest_successes(self, miner_count: int) -> int:
        """Number of honest miners whose single query succeeds this round.

        Honest queries are parallel: the per-round count is a single
        ``Binomial(miner_count, p)`` draw (Eq. 41 of the paper), or one
        Bernoulli per miner under a heterogeneous power profile.
        """
        if miner_count < 0:
            raise SimulationError("miner_count must be non-negative")
        self._honest_queries += miner_count
        if miner_count == 0:
            return 0
        if self.power is not None:
            self._check_profile_count("honest", miner_count)
            return int((self._rng.random(miner_count) < self.power.honest_p).sum())
        return int(self._rng.binomial(miner_count, self.hardness))

    def adversary_successes(self, miner_count: int) -> int:
        """Number of successful adversarial queries this round.

        The adversary's queries are sequential, but each is an independent
        Bernoulli(p), so the per-round count is likewise binomial; the
        *ordering* freedom only matters for how the adversary uses the blocks,
        which is the strategy's concern, not the oracle's.
        """
        if miner_count < 0:
            raise SimulationError("miner_count must be non-negative")
        self._adversary_queries += miner_count
        if miner_count == 0:
            return 0
        if self.power is not None:
            self._check_profile_count("adversary", miner_count)
            return int((self._rng.random(miner_count) < self.power.adversary_p).sum())
        return int(self._rng.binomial(miner_count, self.hardness))

    def honest_success_positions(self, miner_count: int) -> List[int]:
        """Indices of the honest miners that succeed this round.

        Used when block attribution to specific miner ids matters (e.g. for
        chain-quality accounting); equivalent in distribution to
        :meth:`honest_successes`.  Under a power profile, miner ``i``
        succeeds with its own ``p_i``.
        """
        if miner_count < 0:
            raise SimulationError("miner_count must be non-negative")
        self._honest_queries += miner_count
        if miner_count == 0:
            return []
        if self.power is not None:
            self._check_profile_count("honest", miner_count)
            draws = self._rng.random(miner_count) < self.power.honest_p
        else:
            draws = self._rng.random(miner_count) < self.hardness
        return [int(index) for index in np.nonzero(draws)[0]]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def honest_queries(self) -> int:
        """Total honest oracle queries made so far."""
        return self._honest_queries

    @property
    def adversary_queries(self) -> int:
        """Total adversarial oracle queries made so far."""
        return self._adversary_queries


class ScriptedMiningOracle:
    """An oracle that replays pre-drawn per-round success counts.

    The batch engine (:mod:`repro.simulation.batch`) draws whole
    ``(trials, rounds)`` success tensors in one vectorized shot; feeding one
    row of such a tensor through this oracle drives the legacy round-by-round
    simulator with *exactly* the same mining outcomes, which is how the
    seed-equivalence tests compare the two engines.

    Parameters
    ----------
    honest_counts:
        Per-round honest success counts; round ``r`` (1-indexed in the
        simulator) consumes entry ``r - 1``.
    adversary_counts:
        Per-round adversarial success counts, same indexing.
    honest_miner_ids:
        Optional per-round miner-id attribution: for each round, the ids of
        the honest miners whose queries succeeded (one sequence per round,
        length equal to that round's honest count, distinct non-negative
        ids).  When provided, the simulator attributes blocks to exactly
        these miners instead of drawing ids from its own generator — this is
        what lets the vectorized scenario engine
        (:mod:`repro.simulation.scenarios`) replay a trace through the
        legacy simulator bit-for-bit.
    power:
        Optional :class:`~repro.simulation.topology.MiningPowerProfile` the
        script was drawn under.  Replay never consults the ``p_i`` — the
        counts are already decided — but accepting the profile lets the
        oracle reject scripts that are infeasible for it (a round demanding
        more successes than the profile has miners on that side, or
        attributing a block to a miner id outside the profile), mirroring
        the live oracle's interface.
    """

    def __init__(
        self,
        honest_counts: Sequence[int],
        adversary_counts: Sequence[int],
        honest_miner_ids: Optional[Sequence[Sequence[int]]] = None,
        power: Optional[MiningPowerProfile] = None,
    ):
        self.power = power
        self._honest = np.asarray(honest_counts, dtype=np.int64)
        self._adversary = np.asarray(adversary_counts, dtype=np.int64)
        if self._honest.ndim != 1 or self._adversary.ndim != 1:
            raise SimulationError("scripted success counts must be 1-dimensional")
        if len(self._honest) != len(self._adversary):
            raise SimulationError(
                "honest and adversary scripts must cover the same number of rounds"
            )
        if (self._honest < 0).any() or (self._adversary < 0).any():
            raise SimulationError("scripted success counts must be non-negative")
        self._honest_ids: Optional[List[np.ndarray]] = None
        if honest_miner_ids is not None:
            if len(honest_miner_ids) != len(self._honest):
                raise SimulationError(
                    "honest_miner_ids must cover the same number of rounds as "
                    "the success counts"
                )
            self._honest_ids = []
            for round_index, ids in enumerate(honest_miner_ids):
                ids = np.asarray(ids, dtype=np.int64)
                if ids.ndim != 1 or len(ids) != int(self._honest[round_index]):
                    raise SimulationError(
                        f"round {round_index + 1}: expected "
                        f"{int(self._honest[round_index])} miner ids, got {ids!r}"
                    )
                if len(ids) and ((ids < 0).any() or len(np.unique(ids)) != len(ids)):
                    raise SimulationError(
                        f"round {round_index + 1}: miner ids must be distinct "
                        "and non-negative"
                    )
                self._honest_ids.append(ids)
        if power is not None:
            if int(self._honest.max(initial=0)) > power.honest_miners:
                raise SimulationError(
                    f"script demands {int(self._honest.max())} honest successes "
                    f"but the power profile has {power.honest_miners} honest miners"
                )
            if int(self._adversary.max(initial=0)) > power.adversary_miners:
                raise SimulationError(
                    f"script demands {int(self._adversary.max())} adversarial "
                    f"successes but the power profile has "
                    f"{power.adversary_miners} adversarial miners"
                )
            if self._honest_ids is not None:
                for round_index, ids in enumerate(self._honest_ids):
                    if len(ids) and int(ids.max()) >= power.honest_miners:
                        raise SimulationError(
                            f"round {round_index + 1}: miner id {int(ids.max())} "
                            f"is outside the power profile's "
                            f"{power.honest_miners} honest miners"
                        )
        self._honest_cursor = 0
        self._adversary_cursor = 0
        self._honest_queries = 0
        self._adversary_queries = 0

    @property
    def rounds_scripted(self) -> int:
        """Number of rounds the script covers."""
        return len(self._honest)

    def honest_successes(self, miner_count: int) -> int:
        """Next scripted honest success count (must not exceed ``miner_count``)."""
        if miner_count < 0:
            raise SimulationError("miner_count must be non-negative")
        if self._honest_cursor >= len(self._honest):
            raise SimulationError("scripted oracle exhausted its honest rounds")
        value = int(self._honest[self._honest_cursor])
        if value > miner_count:
            raise SimulationError(
                f"script demands {value} honest successes from {miner_count} miners"
            )
        if self._honest_ids is not None:
            ids = self._honest_ids[self._honest_cursor]
            if len(ids) and int(ids.max()) >= miner_count:
                raise SimulationError(
                    f"scripted miner id {int(ids.max())} is out of range for "
                    f"{miner_count} honest miners"
                )
        self._honest_queries += miner_count
        self._honest_cursor += 1
        return value

    def scripted_honest_miner_ids(self) -> Optional[List[int]]:
        """Miner ids for the round most recently consumed by :meth:`honest_successes`.

        Returns ``None`` when no attribution script was provided, in which
        case the simulator falls back to drawing ids from its own generator.
        """
        if self._honest_ids is None:
            return None
        if self._honest_cursor == 0:
            raise SimulationError(
                "no honest round has been consumed yet; call honest_successes first"
            )
        return [int(item) for item in self._honest_ids[self._honest_cursor - 1]]

    def adversary_successes(self, miner_count: int) -> int:
        """Next scripted adversarial success count (must not exceed ``miner_count``)."""
        if miner_count < 0:
            raise SimulationError("miner_count must be non-negative")
        if self._adversary_cursor >= len(self._adversary):
            raise SimulationError("scripted oracle exhausted its adversary rounds")
        value = int(self._adversary[self._adversary_cursor])
        if value > miner_count:
            raise SimulationError(
                f"script demands {value} adversarial successes from {miner_count} miners"
            )
        self._adversary_queries += miner_count
        self._adversary_cursor += 1
        return value

    @property
    def honest_queries(self) -> int:
        """Total honest oracle queries made so far."""
        return self._honest_queries

    @property
    def adversary_queries(self) -> int:
        """Total adversarial oracle queries made so far."""
        return self._adversary_queries
