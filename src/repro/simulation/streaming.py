"""Streaming trial engine: O(chunk) memory Monte Carlo with online accumulation.

The dense engines (:class:`~repro.simulation.batch.BatchSimulation`,
:class:`~repro.simulation.scenarios.ScenarioSimulation`) materialise the full
``(trials, rounds)`` success-count tensors before analysing them — at
``1e8`` trials and a few hundred rounds that is hundreds of gigabytes, far
past any single host.  This module keeps the dense kernels (they are the
audited, golden-pinned implementations) but drives them in fixed-size
*chunks* of trials through online accumulators, so the estimate for an
arbitrarily large trial count is produced while never holding more than
``chunk x rounds`` cells of trace data:

* **chunked execution spine** — trials are drawn and analysed
  ``chunk_cells // rounds`` at a time (the shared
  :func:`repro.backend.chunking.resolve_chunk_cells` knob, overridable per
  engine); each chunk runs the ordinary dense ``run_traces`` kernels over a
  reused :class:`~repro.backend.Workspace` buffer, so the per-chunk math is
  exactly the materialised engine's math;
* **online accumulation** — integer tallies (convergence / adversary block
  totals, Lemma 1 satisfaction, violation hits per requested depth) are
  exact; rate means and confidence intervals stream through
  :class:`OnlineMoments` (Chan-merge Welford moments with a Kahan-compensated
  mean); the worst-deficit distribution lands in a bounded
  :class:`DeficitHistogram`;
* **chunk-invariant seeding** — randomness is organised in fixed *seed
  blocks* of :data:`SEED_BLOCK_CELLS` cells: block ``b`` always draws from
  the ``b``-th spawn of the run's :class:`numpy.random.SeedSequence`, and an
  execution chunk is a group of whole consecutive blocks.  Accumulator
  updates happen per seed block in block order, so the streamed summary is
  **bit-identical** for every chunk size and for serial vs sharded
  execution — the chunk knob is pure execution policy.

The streamed :meth:`StreamingBatchResult.summary` carries exactly the keys
of the dense :meth:`~repro.simulation.batch.BatchResult.summary` (and the
scenario variant those of
:meth:`~repro.simulation.scenarios.ScenarioResult.summary`).  Integer-backed
entries (trial counts, Lemma 1 fractions, Wilson intervals, worst-deficit
aggregates) match the dense numbers exactly; float moment entries (rate
means and normal-approximation intervals) agree within
:data:`STREAM_STAT_RTOL` — the online merge is algebraically the same mean
and variance, accumulated in a different (but fixed) association order.

The streamed draw protocol deliberately differs from the dense engines'
single-generator protocol (per-block spawned child generators instead of one
stream), so a streamed run is a *new* seeded experiment, not a re-execution
of a dense one; :meth:`StreamingBatchSimulation.materialize_traces` exposes
the streamed protocol's full tensors for audits and equivalence tests.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend import Workspace, get_backend, get_dtype_policy, resolve_chunk_cells
from ..backend.chunking import chunk_trials
from ..errors import SimulationError
from ..observability import (
    METRICS as _METRICS,
    TRACE as _TRACE,
    GridProgress,
    resolve_progress_sinks,
)
from ..params import ProtocolParameters
from .batch import (
    BatchResult,
    BatchSimulation,
    draw_mining_traces,
    proportion_confidence_interval,
)
from .rng import SeedLike, derive_seed_sequence
from .scenarios import Scenario, ScenarioResult, ScenarioSimulation
from .topology import DelayModel, MiningPowerProfile

__all__ = [
    "SEED_BLOCK_CELLS",
    "STREAM_STAT_RTOL",
    "seed_block_trials",
    "OnlineMoments",
    "DeficitHistogram",
    "StreamingAccumulator",
    "ScenarioStreamingAccumulator",
    "StreamingBatchResult",
    "StreamingScenarioResult",
    "StreamingBatchSimulation",
    "StreamingScenarioSimulation",
]

#: Cells (trials x rounds) per seed block.  A *protocol constant*, not a
#: tuning knob: the chunk size groups whole blocks, so changing the chunk
#: never changes which child seed draws which trial.  Changing this constant
#: changes every streamed experiment's bit stream.
SEED_BLOCK_CELLS = 1 << 20

#: Documented relative tolerance between streamed float moment statistics
#: (rate means, normal-approximation CI bounds) and the dense engines'
#: materialised statistics.  Integer-backed summary entries match exactly.
STREAM_STAT_RTOL = 1e-9


def seed_block_trials(rounds: int) -> int:
    """Trials per seed block at ``rounds`` rounds (at least one)."""
    return max(SEED_BLOCK_CELLS // max(int(rounds), 1), 1)


def _spawn_block_seeds(
    sequence: np.random.SeedSequence, n_blocks: int
) -> List[np.random.SeedSequence]:
    """Child seed for every block, *stateless*.

    :meth:`numpy.random.SeedSequence.spawn` advances the parent's spawn
    counter, so calling it twice yields different children — a repeated
    ``run`` (or a ``materialize_traces`` audit after one) would silently
    reroll the experiment.  Constructing the children with explicit spawn
    keys reproduces exactly what a fresh sequence's first ``spawn`` returns,
    every time.
    """
    return [
        np.random.SeedSequence(
            entropy=sequence.entropy,
            spawn_key=tuple(sequence.spawn_key) + (index,),
        )
        for index in range(n_blocks)
    ]


class OnlineMoments:
    """Streaming mean / variance with Chan merging and a Kahan-compensated mean.

    Per-block sample moments are folded in with the parallel-variance
    combine of Chan, Golub & LeVeque; the running mean carries a Kahan
    compensation term so millions of tiny block updates do not drift.  The
    update order is fixed (seed-block order), which is what makes streamed
    statistics bit-identical across chunk sizes.
    """

    __slots__ = ("count", "mean", "m2", "_compensation")

    def __init__(self, count: int = 0, mean: float = 0.0, m2: float = 0.0):
        self.count = int(count)
        self.mean = float(mean)
        self.m2 = float(m2)
        self._compensation = 0.0

    def update(self, values) -> None:
        """Fold one block of observations (any array with ``.mean``/``.var``)."""
        count = int(values.size)
        if count == 0:
            return
        block_mean = float(values.mean())
        block_m2 = float(values.var()) * count
        self.combine(count, block_mean, block_m2)

    def combine(self, count: int, mean: float, m2: float) -> None:
        """Merge pre-computed block moments ``(count, mean, sum of squares)``."""
        count = int(count)
        if count <= 0:
            return
        if self.count == 0:
            self.count = count
            self.mean = float(mean)
            self.m2 = float(m2)
            self._compensation = 0.0
            return
        total = self.count + count
        delta = float(mean) - self.mean
        weight = count / total
        # Kahan-compensated mean update: the correction term re-captures the
        # low-order bits the running sum would otherwise shed.
        term = delta * weight - self._compensation
        updated = self.mean + term
        self._compensation = (updated - self.mean) - term
        self.m2 += float(m2) + delta * delta * self.count * weight
        self.mean = updated
        self.count = total

    def ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95% CI, matching
        :func:`repro.simulation.batch._confidence_interval` semantics
        (``(nan, nan)`` below two observations)."""
        if self.count < 2:
            return (math.nan, math.nan)
        variance = self.m2 / (self.count - 1)
        std = math.sqrt(variance if variance > 0.0 else 0.0)
        half_width = 1.96 * std / math.sqrt(self.count)
        return (self.mean - half_width, self.mean + half_width)

    def payload(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean, "m2": self.m2}

    @classmethod
    def from_payload(cls, payload: Dict[str, float]) -> "OnlineMoments":
        return cls(
            count=int(payload["count"]),
            mean=float(payload["mean"]),
            m2=float(payload["m2"]),
        )


class DeficitHistogram:
    """Bounded histogram of per-trial worst windowed deficits.

    Bins ``0 .. bins-1`` hold exact counts; anything deeper lands in the
    ``overflow`` bucket (deficits beyond the bound are individually rare but
    their exact maximum is still tracked by the accumulator).  Memory is
    O(bins) regardless of trial count.
    """

    __slots__ = ("bins", "counts", "overflow")

    def __init__(
        self,
        bins: int = 64,
        counts: Optional[Sequence[int]] = None,
        overflow: int = 0,
    ):
        bins = int(bins)
        if bins < 1:
            raise SimulationError(f"bins must be positive, got {bins!r}")
        self.bins = bins
        self.counts: List[int] = (
            [0] * bins if counts is None else [int(value) for value in counts]
        )
        if len(self.counts) != bins:
            raise SimulationError(
                f"counts must have length {bins}, got {len(self.counts)}"
            )
        self.overflow = int(overflow)

    def update(self, deficits) -> None:
        """Fold one block of integer deficits (early exit once all counted)."""
        remaining = int(deficits.size)
        for value in range(self.bins):
            if remaining == 0:
                return
            hits = int((deficits == value).sum())
            self.counts[value] += hits
            remaining -= hits
        self.overflow += remaining

    @property
    def total(self) -> int:
        return sum(self.counts) + self.overflow

    def payload(self) -> Dict[str, object]:
        return {
            "bins": self.bins,
            "counts": list(self.counts),
            "overflow": self.overflow,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "DeficitHistogram":
        return cls(
            bins=int(payload["bins"]),
            counts=payload["counts"],
            overflow=int(payload["overflow"]),
        )


def _normalize_depths(depths: Optional[Iterable[int]]) -> Tuple[int, ...]:
    """Sorted unique non-negative violation depths."""
    if depths is None:
        return ()
    cleaned = sorted({int(depth) for depth in depths})
    if cleaned and cleaned[0] < 0:
        raise SimulationError(f"violation depths must be >= 0, got {cleaned[0]}")
    return tuple(cleaned)


class StreamingAccumulator:
    """Online tallies for a streamed batch run, updated one seed block at a time.

    Integer statistics are exact; rate moments stream through
    :class:`OnlineMoments`.  Updates must arrive in seed-block order — the
    engine guarantees this, and it is what pins streamed summaries
    bit-identical across chunk sizes.
    """

    def __init__(self, depths: Iterable[int] = (), histogram_bins: int = 64):
        self.depths = _normalize_depths(depths)
        self.trials = 0
        self.convergence_moments = OnlineMoments()
        self.adversary_moments = OnlineMoments()
        self.convergence_total = 0
        self.honest_total = 0
        self.adversary_total = 0
        self.lemma1_satisfied = 0
        self.worst_deficit_sum = 0
        self.max_worst_deficit = 0
        self.violation_hits: Dict[int, int] = {depth: 0 for depth in self.depths}
        self.deficit_histogram = DeficitHistogram(bins=histogram_bins)

    def update(self, result: BatchResult, lo: int, hi: int) -> None:
        """Fold the per-trial slice ``[lo:hi)`` of one chunk's dense result."""
        if hi <= lo:
            return
        rounds = result.rounds
        convergence = result.convergence_opportunities[lo:hi]
        adversary = result.adversary_blocks[lo:hi]
        deficits = result.worst_deficits[lo:hi]
        self.trials += hi - lo
        self.convergence_moments.update(convergence / rounds)
        self.adversary_moments.update(adversary / rounds)
        self.convergence_total += int(convergence.sum())
        self.honest_total += int(result.honest_blocks[lo:hi].sum())
        self.adversary_total += int(adversary.sum())
        self.lemma1_satisfied += int((convergence - adversary > 0).sum())
        self.worst_deficit_sum += int(deficits.sum())
        block_max = int(deficits.max())
        if block_max > self.max_worst_deficit:
            self.max_worst_deficit = block_max
        for depth in self.depths:
            self.violation_hits[depth] += int((deficits >= depth).sum())
        self.deficit_histogram.update(deficits)


class ScenarioStreamingAccumulator:
    """Online tallies for a streamed scenario run (one seed block at a time)."""

    def __init__(self, success_depth: int):
        self.success_depth = int(success_depth)
        self.trials = 0
        self.success_hits = 0
        self.fork_moments = OnlineMoments()
        self.max_deepest_fork = 0
        self.releases_sum = 0
        self.abandons_sum = 0
        self.orphaned_sum = 0
        self.final_height_sum = 0
        self.lemma1_satisfied = 0
        self.merge_depth_sum = 0
        self.has_merge_depths = False

    def update(self, result: ScenarioResult, lo: int, hi: int) -> None:
        """Fold the per-trial slice ``[lo:hi)`` of one chunk's dense result."""
        if hi <= lo:
            return
        forks = result.deepest_forks[lo:hi]
        self.trials += hi - lo
        self.success_hits += int((forks >= self.success_depth).sum())
        self.fork_moments.update(forks)
        block_max = int(forks.max())
        if block_max > self.max_deepest_fork:
            self.max_deepest_fork = block_max
        self.releases_sum += int(result.releases[lo:hi].sum())
        self.abandons_sum += int(result.abandons[lo:hi].sum())
        self.orphaned_sum += int(result.orphaned_honest[lo:hi].sum())
        self.final_height_sum += int(result.final_public_heights[lo:hi].sum())
        margins = (
            result.convergence_opportunities[lo:hi]
            - result.adversary_blocks[lo:hi]
        )
        self.lemma1_satisfied += int((margins > 0).sum())
        merge_depths = result.merge_depths
        if merge_depths is not None:
            self.has_merge_depths = True
            self.merge_depth_sum += int(merge_depths[lo:hi].sum())


@dataclass
class StreamingBatchResult:
    """Summary-only outcome of a streamed batch run (O(1) memory).

    Carries no per-trial arrays — every statistic the dense
    :meth:`~repro.simulation.batch.BatchResult.summary` reports is available
    (same keys, integer entries exact, float moments within
    :data:`STREAM_STAT_RTOL`), plus exact violation hit counts for every
    requested depth and the bounded worst-deficit histogram.
    """

    params: ProtocolParameters
    trials: int
    rounds: int
    draw_mode: str
    delay_model: str
    seed_block_trials: int
    n_chunks: int
    convergence_moments: OnlineMoments
    adversary_moments: OnlineMoments
    convergence_total: int
    honest_total: int
    adversary_total: int
    lemma1_satisfied: int
    worst_deficit_sum: int
    max_worst_deficit: int
    violation_hits: Dict[int, int]
    deficit_histogram: DeficitHistogram = field(repr=False)

    @property
    def mean_convergence_rate(self) -> float:
        return self.convergence_moments.mean

    @property
    def convergence_rate_ci95(self) -> Tuple[float, float]:
        return self.convergence_moments.ci95()

    @property
    def mean_adversary_rate(self) -> float:
        return self.adversary_moments.mean

    @property
    def adversary_rate_ci95(self) -> Tuple[float, float]:
        return self.adversary_moments.ci95()

    @property
    def lemma1_fraction(self) -> float:
        return self.lemma1_satisfied / self.trials

    @property
    def mean_worst_deficit(self) -> float:
        return self.worst_deficit_sum / self.trials

    @property
    def theoretical_convergence_rate(self) -> float:
        return self.params.convergence_opportunity_probability

    @property
    def theoretical_adversary_rate(self) -> float:
        return self.params.beta

    @property
    def depths(self) -> Tuple[int, ...]:
        """The violation depths this run tracked exact hit counts for."""
        return tuple(sorted(self.violation_hits))

    def violation_probability(self, depth: int) -> float:
        """Fraction of trials whose worst windowed deficit reached ``depth``."""
        return self._hits(depth) / self.trials

    def violation_ci95(self, depth: int) -> Tuple[float, float]:
        """Wilson score 95% interval for the depth-``depth`` violation rate."""
        return proportion_confidence_interval(self._hits(depth), self.trials)

    def _hits(self, depth: int) -> int:
        depth = int(depth)
        if depth not in self.violation_hits:
            raise SimulationError(
                f"depth {depth} was not tracked by this streamed run; "
                f"tracked depths: {sorted(self.violation_hits)}"
            )
        return self.violation_hits[depth]

    def summary(self) -> Dict[str, object]:
        """Same keys as :meth:`repro.simulation.batch.BatchResult.summary`."""
        convergence_ci = self.convergence_rate_ci95
        adversary_ci = self.adversary_rate_ci95
        return {
            "trials": self.trials,
            "rounds": self.rounds,
            "c": self.params.c,
            "nu": self.params.nu,
            "delta": self.params.delta,
            "mean_convergence_rate": self.mean_convergence_rate,
            "convergence_rate_ci95_low": convergence_ci[0],
            "convergence_rate_ci95_high": convergence_ci[1],
            "theoretical_convergence_rate": self.theoretical_convergence_rate,
            "mean_adversary_rate": self.mean_adversary_rate,
            "adversary_rate_ci95_low": adversary_ci[0],
            "adversary_rate_ci95_high": adversary_ci[1],
            "theoretical_adversary_rate": self.theoretical_adversary_rate,
            "lemma1_fraction": self.lemma1_fraction,
            "mean_worst_deficit": self.mean_worst_deficit,
            "max_worst_deficit": int(self.max_worst_deficit),
            "delay_model": self.delay_model,
        }

    def payload(self) -> Dict[str, object]:
        """The statistical state as JSON-serialisable scalars (no params)."""
        return {
            "trials": self.trials,
            "rounds": self.rounds,
            "draw_mode": self.draw_mode,
            "delay_model": self.delay_model,
            "seed_block_trials": self.seed_block_trials,
            "n_chunks": self.n_chunks,
            "convergence_moments": self.convergence_moments.payload(),
            "adversary_moments": self.adversary_moments.payload(),
            "convergence_total": self.convergence_total,
            "honest_total": self.honest_total,
            "adversary_total": self.adversary_total,
            "lemma1_satisfied": self.lemma1_satisfied,
            "worst_deficit_sum": self.worst_deficit_sum,
            "max_worst_deficit": self.max_worst_deficit,
            "violation_hits": {
                str(depth): hits for depth, hits in self.violation_hits.items()
            },
            "deficit_histogram": self.deficit_histogram.payload(),
        }

    @classmethod
    def from_payload(
        cls, payload: Dict[str, object], params: ProtocolParameters
    ) -> "StreamingBatchResult":
        return cls(
            params=params,
            trials=int(payload["trials"]),
            rounds=int(payload["rounds"]),
            draw_mode=str(payload["draw_mode"]),
            delay_model=str(payload["delay_model"]),
            seed_block_trials=int(payload["seed_block_trials"]),
            n_chunks=int(payload["n_chunks"]),
            convergence_moments=OnlineMoments.from_payload(
                payload["convergence_moments"]
            ),
            adversary_moments=OnlineMoments.from_payload(
                payload["adversary_moments"]
            ),
            convergence_total=int(payload["convergence_total"]),
            honest_total=int(payload["honest_total"]),
            adversary_total=int(payload["adversary_total"]),
            lemma1_satisfied=int(payload["lemma1_satisfied"]),
            worst_deficit_sum=int(payload["worst_deficit_sum"]),
            max_worst_deficit=int(payload["max_worst_deficit"]),
            violation_hits={
                int(depth): int(hits)
                for depth, hits in payload["violation_hits"].items()
            },
            deficit_histogram=DeficitHistogram.from_payload(
                payload["deficit_histogram"]
            ),
        )


@dataclass
class StreamingScenarioResult:
    """Summary-only outcome of a streamed scenario run (O(1) memory)."""

    params: ProtocolParameters
    scenario: Scenario
    trials: int
    rounds: int
    draw_mode: str
    honest_delay: int
    delay_model: Optional[str]
    release_delay: int
    seed_block_trials: int
    n_chunks: int
    success_hits: int
    fork_moments: OnlineMoments
    max_deepest_fork: int
    releases_sum: int
    abandons_sum: int
    orphaned_sum: int
    final_height_sum: int
    lemma1_satisfied: int
    merge_depth_sum: int
    has_merge_depths: bool

    @property
    def attack_success_probability(self) -> float:
        return self.success_hits / self.trials

    @property
    def attack_success_ci95(self) -> Tuple[float, float]:
        return proportion_confidence_interval(self.success_hits, self.trials)

    @property
    def mean_deepest_fork(self) -> float:
        return self.fork_moments.mean

    @property
    def deepest_fork_ci95(self) -> Tuple[float, float]:
        return self.fork_moments.ci95()

    @property
    def lemma1_fraction(self) -> float:
        return self.lemma1_satisfied / self.trials

    @property
    def mean_growth_rate(self) -> float:
        return self.final_height_sum / (self.trials * self.rounds)

    @property
    def mean_merge_depth(self) -> float:
        if not self.has_merge_depths:
            return 0.0
        return self.merge_depth_sum / self.trials

    def summary(self) -> Dict[str, object]:
        """Same keys as :meth:`repro.simulation.scenarios.ScenarioResult.summary`."""
        success_ci = self.attack_success_ci95
        fork_ci = self.deepest_fork_ci95
        return {
            "scenario": self.scenario.name,
            "trials": self.trials,
            "rounds": self.rounds,
            "c": self.params.c,
            "nu": self.params.nu,
            "delta": self.params.delta,
            "honest_delay": self.honest_delay,
            "attack_success_probability": self.attack_success_probability,
            "attack_success_ci95_low": success_ci[0],
            "attack_success_ci95_high": success_ci[1],
            "mean_deepest_fork": self.mean_deepest_fork,
            "deepest_fork_ci95_low": fork_ci[0],
            "deepest_fork_ci95_high": fork_ci[1],
            "max_deepest_fork": int(self.max_deepest_fork),
            "mean_releases": self.releases_sum / self.trials,
            "mean_abandons": self.abandons_sum / self.trials,
            "mean_orphaned_honest": self.orphaned_sum / self.trials,
            "mean_growth_rate": self.mean_growth_rate,
            "lemma1_fraction": self.lemma1_fraction,
            "delay_model": self.delay_model,
            "release_delay": self.release_delay,
            "mean_merge_depth": self.mean_merge_depth,
        }

    def payload(self) -> Dict[str, object]:
        """The statistical state as JSON-serialisable scalars (no params/scenario)."""
        return {
            "trials": self.trials,
            "rounds": self.rounds,
            "draw_mode": self.draw_mode,
            "honest_delay": self.honest_delay,
            "delay_model": self.delay_model,
            "release_delay": self.release_delay,
            "seed_block_trials": self.seed_block_trials,
            "n_chunks": self.n_chunks,
            "success_hits": self.success_hits,
            "fork_moments": self.fork_moments.payload(),
            "max_deepest_fork": self.max_deepest_fork,
            "releases_sum": self.releases_sum,
            "abandons_sum": self.abandons_sum,
            "orphaned_sum": self.orphaned_sum,
            "final_height_sum": self.final_height_sum,
            "lemma1_satisfied": self.lemma1_satisfied,
            "merge_depth_sum": self.merge_depth_sum,
            "has_merge_depths": self.has_merge_depths,
        }

    @classmethod
    def from_payload(
        cls,
        payload: Dict[str, object],
        params: ProtocolParameters,
        scenario: Scenario,
    ) -> "StreamingScenarioResult":
        delay_model = payload["delay_model"]
        return cls(
            params=params,
            scenario=scenario,
            trials=int(payload["trials"]),
            rounds=int(payload["rounds"]),
            draw_mode=str(payload["draw_mode"]),
            honest_delay=int(payload["honest_delay"]),
            delay_model=None if delay_model is None else str(delay_model),
            release_delay=int(payload["release_delay"]),
            seed_block_trials=int(payload["seed_block_trials"]),
            n_chunks=int(payload["n_chunks"]),
            success_hits=int(payload["success_hits"]),
            fork_moments=OnlineMoments.from_payload(payload["fork_moments"]),
            max_deepest_fork=int(payload["max_deepest_fork"]),
            releases_sum=int(payload["releases_sum"]),
            abandons_sum=int(payload["abandons_sum"]),
            orphaned_sum=int(payload["orphaned_sum"]),
            final_height_sum=int(payload["final_height_sum"]),
            lemma1_satisfied=int(payload["lemma1_satisfied"]),
            merge_depth_sum=int(payload["merge_depth_sum"]),
            has_merge_depths=bool(payload["has_merge_depths"]),
        )


# ----------------------------------------------------------------------
# The chunked execution spine
# ----------------------------------------------------------------------
def _plan_blocks(
    trials: int, rounds: int, chunk_cells: Optional[int]
) -> Tuple[int, int, int]:
    """``(block, n_blocks, blocks_per_chunk)`` for one streamed run.

    The seed block size depends only on ``rounds`` (a protocol constant);
    the chunk groups whole consecutive blocks, at least one per chunk, so
    any ``chunk_cells`` setting executes the identical per-block draws.
    """
    block = seed_block_trials(rounds)
    n_blocks = -(-trials // block)
    per_chunk = max(chunk_trials(rounds, resolve_chunk_cells(chunk_cells)) // block, 1)
    return block, n_blocks, per_chunk


def _validate_shape(trials: int, rounds: int) -> Tuple[int, int]:
    trials = int(trials)
    rounds = int(rounds)
    if trials < 1:
        raise SimulationError(f"trials must be positive, got {trials!r}")
    if rounds < 1:
        raise SimulationError(f"rounds must be positive, got {rounds!r}")
    return trials, rounds


class StreamingBatchSimulation:
    """Chunked, constant-memory execution of the batch Monte Carlo engine.

    Parameters
    ----------
    params:
        Protocol parameters (``p``, ``n``, ``Δ``, ``nu``).
    seed:
        An integer, :class:`numpy.random.SeedSequence` or ``None`` (seed 0).
        A live :class:`numpy.random.Generator` is **rejected** — the
        chunk-invariance contract needs a spawnable seed, not a stateful
        stream (:func:`~repro.simulation.rng.derive_seed_sequence`).
    draw_mode / delay_model / power / workspace:
        Forwarded to the underlying dense
        :class:`~repro.simulation.batch.BatchSimulation`, whose kernels
        analyse each chunk.
    chunk_cells:
        Execution chunk budget in cells; ``None`` defers to the shared
        :func:`repro.backend.chunking.resolve_chunk_cells` configuration
        (``REPRO_CHUNK_CELLS``).  Pure execution policy — results are
        bit-identical for every setting.

    Examples
    --------
    >>> from repro.params import parameters_from_c
    >>> params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
    >>> streamed = StreamingBatchSimulation(params, seed=7)
    >>> result = streamed.run(trials=200, rounds=500, depths=(1,))
    >>> result.trials
    200
    >>> sorted(result.summary()) == sorted(
    ...     BatchSimulation(params, rng=7).run(200, 500).summary()
    ... )
    True
    """

    def __init__(
        self,
        params: ProtocolParameters,
        seed: SeedLike = None,
        draw_mode: str = "binomial",
        delay_model: Union[None, str, DelayModel] = None,
        power: Optional[MiningPowerProfile] = None,
        workspace: Optional[Workspace] = None,
        chunk_cells: Optional[int] = None,
    ):
        self.params = params
        self.seed_sequence = derive_seed_sequence(seed)
        self.chunk_cells = (
            None if chunk_cells is None else resolve_chunk_cells(chunk_cells)
        )
        self.engine = BatchSimulation(
            params,
            rng=0,
            draw_mode=draw_mode,
            delay_model=delay_model,
            power=power,
            workspace=workspace,
        )
        self.workspace = workspace

    @property
    def draw_mode(self) -> str:
        return self.engine.draw_mode

    def _buffer(self, tag: str, shape, dtype):
        if self.workspace is not None:
            return self.workspace.empty(tag, shape, dtype)
        return self.engine.backend.empty(shape, dtype=dtype)

    def _block_sizes(self, trials: int, block: int, first: int, last: int):
        """Trial counts of seed blocks ``first .. last-1`` (last may be short)."""
        return [
            min(block, trials - index * block) for index in range(first, last)
        ]

    def run(
        self,
        trials: int,
        rounds: int,
        depths: Iterable[int] = (),
        progress=None,
    ) -> StreamingBatchResult:
        """Stream ``trials`` independent runs through the dense kernels.

        ``depths`` requests exact violation hit counts (worst windowed
        deficit ``>= depth``) accumulated per chunk.  ``progress`` configures
        chunk-level :class:`~repro.observability.GridProgress` events
        (resolved like the runner's grid progress; ``None`` consults
        ``REPRO_PROGRESS``).
        """
        trials, rounds = _validate_shape(trials, rounds)
        self.engine.policy.check_rounds(rounds)
        block, n_blocks, per_chunk = _plan_blocks(trials, rounds, self.chunk_cells)
        n_chunks = -(-n_blocks // per_chunk)
        accumulator = StreamingAccumulator(depths=depths)
        children = _spawn_block_seeds(self.seed_sequence, n_blocks)
        capacity = min(per_chunk * block, trials)
        xp = self.engine.backend
        index_dtype = self.engine.policy.index_dtype(xp)
        honest_buffer = self._buffer("stream.honest", (capacity, rounds), index_dtype)
        adversary_buffer = self._buffer(
            "stream.adversary", (capacity, rounds), index_dtype
        )
        delay_model = self.engine.delay_model
        streamed_delays = delay_model is not None and not delay_model.trivial
        delays_buffer = (
            self._buffer("stream.delays", (capacity, rounds), index_dtype)
            if streamed_delays
            else None
        )
        max_delay = (
            delay_model.delay_cap(self.params.delta, rounds)
            if streamed_delays
            else None
        )
        sinks = resolve_progress_sinks(progress)
        reporter = (
            GridProgress("stream.batch", n_chunks, sinks) if sinks else None
        )
        with _TRACE.span(
            "stream.run",
            trials=trials,
            rounds=rounds,
            chunks=n_chunks,
            blocks=n_blocks,
            draw_mode=self.draw_mode,
        ):
            self._stream(
                accumulator,
                children,
                trials,
                rounds,
                block,
                per_chunk,
                honest_buffer,
                adversary_buffer,
                delays_buffer,
                max_delay,
                reporter,
            )
        _METRICS.increment("engine.stream.chunks", n_chunks)
        _METRICS.increment("engine.stream.blocks", n_blocks)
        _METRICS.increment("engine.stream.trials", trials)
        _METRICS.increment("engine.stream.cells", trials * rounds)
        return StreamingBatchResult(
            params=self.params,
            trials=trials,
            rounds=rounds,
            draw_mode=self.draw_mode,
            delay_model=self.engine._delay_model_name,
            seed_block_trials=block,
            n_chunks=n_chunks,
            convergence_moments=accumulator.convergence_moments,
            adversary_moments=accumulator.adversary_moments,
            convergence_total=accumulator.convergence_total,
            honest_total=accumulator.honest_total,
            adversary_total=accumulator.adversary_total,
            lemma1_satisfied=accumulator.lemma1_satisfied,
            worst_deficit_sum=accumulator.worst_deficit_sum,
            max_worst_deficit=accumulator.max_worst_deficit,
            violation_hits=dict(accumulator.violation_hits),
            deficit_histogram=accumulator.deficit_histogram,
        )

    def _stream(
        self,
        accumulator: StreamingAccumulator,
        children,
        trials: int,
        rounds: int,
        block: int,
        per_chunk: int,
        honest_buffer,
        adversary_buffer,
        delays_buffer,
        max_delay,
        reporter,
    ) -> None:
        """The chunk loop (hot path: handle-free, backend-only tensor math)."""
        engine = self.engine
        params = self.params
        draw_mode = self.draw_mode
        power = engine.power
        xp = engine.backend
        policy = engine.policy
        delay_model = engine.delay_model
        n_blocks = len(children)
        clock = time.perf_counter
        for first in range(0, n_blocks, per_chunk):
            started = clock()
            last = min(first + per_chunk, n_blocks)
            sizes = self._block_sizes(trials, block, first, last)
            offset = 0
            for position, size in enumerate(sizes):
                rng = np.random.default_rng(children[first + position])
                honest, adversary = draw_mining_traces(
                    params,
                    size,
                    rounds,
                    rng,
                    draw_mode,
                    power=power,
                    backend=xp,
                    policy=policy,
                )
                honest_buffer[offset : offset + size] = honest
                adversary_buffer[offset : offset + size] = adversary
                if delays_buffer is not None:
                    delays_buffer[offset : offset + size] = (
                        delay_model.draw_delays(size, rounds, params.delta, rng)
                    )
                offset += size
            result = engine.run_traces(
                honest_buffer[:offset],
                adversary_buffer[:offset],
                delays=(
                    delays_buffer[:offset] if delays_buffer is not None else None
                ),
                max_delay=max_delay,
            )
            lo = 0
            for size in sizes:
                accumulator.update(result, lo, lo + size)
                lo += size
            if reporter is not None:
                reporter.point_done(clock() - started)

    def materialize_traces(self, trials: int, rounds: int):
        """Full host tensors under the *streamed* draw protocol (audit helper).

        Materialises exactly the per-block draws a streamed run would
        consume, concatenated — O(trials x rounds) memory, so this is for
        equivalence tests and audits at modest sizes, not production runs.
        Returns ``(honest, adversary, delays)`` with ``delays`` ``None``
        under a trivial delay model.
        """
        trials, rounds = _validate_shape(trials, rounds)
        block, n_blocks, _ = _plan_blocks(trials, rounds, self.chunk_cells)
        children = _spawn_block_seeds(self.seed_sequence, n_blocks)
        xp = self.engine.backend
        honest_parts = []
        adversary_parts = []
        delay_parts = []
        delay_model = self.engine.delay_model
        streamed_delays = delay_model is not None and not delay_model.trivial
        for index, child in enumerate(children):
            size = min(block, trials - index * block)
            rng = np.random.default_rng(child)
            honest, adversary = draw_mining_traces(
                self.params,
                size,
                rounds,
                rng,
                self.draw_mode,
                power=self.engine.power,
                backend=xp,
                policy=self.engine.policy,
            )
            honest_parts.append(xp.to_host(honest))
            adversary_parts.append(xp.to_host(adversary))
            if streamed_delays:
                delay_parts.append(
                    xp.to_host(
                        delay_model.draw_delays(
                            size, rounds, self.params.delta, rng
                        )
                    )
                )
        return (
            np.concatenate(honest_parts, axis=0),
            np.concatenate(adversary_parts, axis=0),
            np.concatenate(delay_parts, axis=0) if streamed_delays else None,
        )


class StreamingScenarioSimulation:
    """Chunked, constant-memory execution of one adversarial scenario.

    Mirrors :class:`StreamingBatchSimulation` over the dense
    :class:`~repro.simulation.scenarios.ScenarioSimulation` kernels: the
    per-block draw protocol is honest tensor, adversarial tensor, then the
    scenario's third draw (the minority-split tensor for partial-cut
    scenarios, the delay tensor for non-trivial delay models, nothing
    otherwise), each block from its own spawned child seed.
    """

    def __init__(
        self,
        params: ProtocolParameters,
        scenario: Union[str, Scenario] = "passive",
        seed: SeedLike = None,
        draw_mode: str = "binomial",
        delay_model: Union[None, str, DelayModel] = None,
        power: Optional[MiningPowerProfile] = None,
        placement=None,
        workspace: Optional[Workspace] = None,
        chunk_cells: Optional[int] = None,
    ):
        self.params = params
        self.seed_sequence = derive_seed_sequence(seed)
        self.chunk_cells = (
            None if chunk_cells is None else resolve_chunk_cells(chunk_cells)
        )
        self.engine = ScenarioSimulation(
            params,
            scenario,
            rng=0,
            draw_mode=draw_mode,
            delay_model=delay_model,
            power=power,
            placement=placement,
            workspace=workspace,
        )
        self.scenario = self.engine.scenario
        self.workspace = workspace

    @property
    def draw_mode(self) -> str:
        return self.engine.draw_mode

    _buffer = StreamingBatchSimulation._buffer
    _block_sizes = StreamingBatchSimulation._block_sizes

    def run(
        self, trials: int, rounds: int, progress=None
    ) -> StreamingScenarioResult:
        """Stream ``trials`` independent attack trials through the dense scan."""
        trials, rounds = _validate_shape(trials, rounds)
        self.engine.policy.check_rounds(rounds)
        block, n_blocks, per_chunk = _plan_blocks(trials, rounds, self.chunk_cells)
        n_chunks = -(-n_blocks // per_chunk)
        accumulator = ScenarioStreamingAccumulator(self.scenario.success_depth)
        children = _spawn_block_seeds(self.seed_sequence, n_blocks)
        capacity = min(per_chunk * block, trials)
        engine = self.engine
        xp = engine.backend
        index_dtype = engine.policy.index_dtype(xp)
        honest_buffer = self._buffer("stream.honest", (capacity, rounds), index_dtype)
        adversary_buffer = self._buffer(
            "stream.adversary", (capacity, rounds), index_dtype
        )
        split_buffer = None
        delays_buffer = None
        max_delay = None
        if engine._cut_fraction is not None:
            split_buffer = self._buffer(
                "stream.split", (capacity, rounds), index_dtype
            )
        elif engine.delay_model is not None and not engine.delay_model.trivial:
            delays_buffer = self._buffer(
                "stream.delays", (capacity, rounds), index_dtype
            )
            max_delay = engine.delay_model.delay_cap(self.params.delta, rounds)
        sinks = resolve_progress_sinks(progress)
        reporter = (
            GridProgress("stream.scenario", n_chunks, sinks) if sinks else None
        )
        with _TRACE.span(
            "stream.scenario_run",
            scenario=self.scenario.name,
            trials=trials,
            rounds=rounds,
            chunks=n_chunks,
            blocks=n_blocks,
        ):
            self._stream(
                accumulator,
                children,
                trials,
                rounds,
                block,
                per_chunk,
                honest_buffer,
                adversary_buffer,
                split_buffer,
                delays_buffer,
                max_delay,
                reporter,
            )
        _METRICS.increment("engine.stream.chunks", n_chunks)
        _METRICS.increment("engine.stream.blocks", n_blocks)
        _METRICS.increment("engine.stream.trials", trials)
        _METRICS.increment("engine.stream.cells", trials * rounds)
        return StreamingScenarioResult(
            params=self.params,
            scenario=self.scenario,
            trials=trials,
            rounds=rounds,
            draw_mode=self.draw_mode,
            honest_delay=engine.honest_delay,
            delay_model=(
                None if engine.delay_model is None else engine.delay_model.name
            ),
            release_delay=engine.release_delay,
            seed_block_trials=block,
            n_chunks=n_chunks,
            success_hits=accumulator.success_hits,
            fork_moments=accumulator.fork_moments,
            max_deepest_fork=accumulator.max_deepest_fork,
            releases_sum=accumulator.releases_sum,
            abandons_sum=accumulator.abandons_sum,
            orphaned_sum=accumulator.orphaned_sum,
            final_height_sum=accumulator.final_height_sum,
            lemma1_satisfied=accumulator.lemma1_satisfied,
            merge_depth_sum=accumulator.merge_depth_sum,
            has_merge_depths=accumulator.has_merge_depths,
        )

    def _stream(
        self,
        accumulator: ScenarioStreamingAccumulator,
        children,
        trials: int,
        rounds: int,
        block: int,
        per_chunk: int,
        honest_buffer,
        adversary_buffer,
        split_buffer,
        delays_buffer,
        max_delay,
        reporter,
    ) -> None:
        """The chunk loop (hot path: handle-free, backend-only tensor math)."""
        engine = self.engine
        params = self.params
        draw_mode = self.draw_mode
        power = engine.power
        xp = engine.backend
        policy = engine.policy
        delay_model = engine.delay_model
        cut_fraction = engine._cut_fraction
        n_blocks = len(children)
        clock = time.perf_counter
        for first in range(0, n_blocks, per_chunk):
            started = clock()
            last = min(first + per_chunk, n_blocks)
            sizes = self._block_sizes(trials, block, first, last)
            offset = 0
            for position, size in enumerate(sizes):
                rng = np.random.default_rng(children[first + position])
                honest, adversary = draw_mining_traces(
                    params,
                    size,
                    rounds,
                    rng,
                    draw_mode,
                    power=power,
                    backend=xp,
                    policy=policy,
                )
                honest_buffer[offset : offset + size] = honest
                adversary_buffer[offset : offset + size] = adversary
                if split_buffer is not None:
                    split_buffer[offset : offset + size] = xp.binomial(
                        rng,
                        xp.to_host(honest),
                        float(cut_fraction),
                        honest.shape,
                    )
                elif delays_buffer is not None:
                    delays_buffer[offset : offset + size] = (
                        delay_model.draw_delays(size, rounds, params.delta, rng)
                    )
                offset += size
            result = engine.run_traces(
                honest_buffer[:offset],
                adversary_buffer[:offset],
                delays=(
                    delays_buffer[:offset] if delays_buffer is not None else None
                ),
                max_delay=max_delay,
                split_counts=(
                    split_buffer[:offset] if split_buffer is not None else None
                ),
            )
            lo = 0
            for size in sizes:
                accumulator.update(result, lo, lo + size)
                lo += size
            if reporter is not None:
                reporter.point_done(clock() - started)

    def materialize_traces(self, trials: int, rounds: int):
        """Full host tensors under the streamed scenario draw protocol.

        Returns ``(honest, adversary, third)`` where ``third`` is the
        minority-split tensor (partial-cut scenarios), the delay tensor
        (non-trivial delay models) or ``None``.  O(trials x rounds) memory
        — an audit/equivalence helper, not a production path.
        """
        trials, rounds = _validate_shape(trials, rounds)
        block, n_blocks, _ = _plan_blocks(trials, rounds, self.chunk_cells)
        children = _spawn_block_seeds(self.seed_sequence, n_blocks)
        engine = self.engine
        xp = engine.backend
        honest_parts = []
        adversary_parts = []
        third_parts = []
        delay_model = engine.delay_model
        cut_fraction = engine._cut_fraction
        streamed_delays = (
            cut_fraction is None
            and delay_model is not None
            and not delay_model.trivial
        )
        for index, child in enumerate(children):
            size = min(block, trials - index * block)
            rng = np.random.default_rng(child)
            honest, adversary = draw_mining_traces(
                self.params,
                size,
                rounds,
                rng,
                self.draw_mode,
                power=engine.power,
                backend=xp,
                policy=engine.policy,
            )
            honest_parts.append(xp.to_host(honest))
            adversary_parts.append(xp.to_host(adversary))
            if cut_fraction is not None:
                third_parts.append(
                    xp.to_host(
                        xp.binomial(
                            rng,
                            xp.to_host(honest),
                            float(cut_fraction),
                            honest.shape,
                        )
                    )
                )
            elif streamed_delays:
                third_parts.append(
                    xp.to_host(
                        delay_model.draw_delays(
                            size, rounds, self.params.delta, rng
                        )
                    )
                )
        third = (
            np.concatenate(third_parts, axis=0) if third_parts else None
        )
        return (
            np.concatenate(honest_parts, axis=0),
            np.concatenate(adversary_parts, axis=0),
            third,
        )
