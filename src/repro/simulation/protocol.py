"""The round-based execution of Nakamoto's protocol in the Δ-delay model.

This is the simulator substrate: it executes the model of Section III of the
paper round by round —

1. honest miners receive the blocks whose (adversarially chosen, Δ-capped)
   delays have expired and update their views;
2. each honest miner makes one oracle query; successful miners create a block
   extending the longest chain in their view and broadcast it, with the
   adversary choosing the delay;
3. the adversary's corrupted miners make their queries sequentially, extending
   whatever block the adversary's strategy chooses, and the strategy decides
   which privately held blocks to publish;
4. the per-round events (honest/adversarial block counts, chain heights) are
   recorded and convergence opportunities are detected online.

The result object bundles everything the analysis layer needs: per-round
traces, convergence-opportunity and adversarial-block counts (the two sides of
Lemma 1), periodic chain snapshots for the Definition 1 consistency check, and
chain-growth / chain-quality metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from ..params import ProtocolParameters
from .adversary import AdversaryStrategy, PassiveAdversary, PrivateChainAdversary
from .block import Block
from .blocktree import BlockTree
from .events import ConvergenceOpportunityDetector, RoundRecord
from .metrics import (
    ConsistencyReport,
    chain_growth_rate,
    chain_quality,
    consistency_report,
)
from .miners import HonestPopulation
from .network import DeltaDelayNetwork
from .oracle import MiningOracle
from .rng import SeedLike, resolve_rng

__all__ = ["SimulationResult", "NakamotoSimulation"]


@dataclass
class SimulationResult:
    """Everything produced by one simulation run."""

    params: ProtocolParameters
    rounds: int
    adversary_name: str
    honest_blocks_per_round: np.ndarray
    adversary_blocks_per_round: np.ndarray
    records: List[RoundRecord]
    convergence_opportunities: int
    total_honest_blocks: int
    total_adversary_blocks: int
    chain_snapshots: List[List[int]]
    snapshot_rounds: List[int]
    final_chain: List[int]
    final_height: int
    consistency: ConsistencyReport
    growth_rate: float
    quality: float
    adversary_releases: int = 0
    adversary_deepest_fork: int = 0

    # ------------------------------------------------------------------
    # Theory-vs-simulation conveniences
    # ------------------------------------------------------------------
    @property
    def empirical_convergence_rate(self) -> float:
        """Convergence opportunities per round (compare to Eq. 44)."""
        return self.convergence_opportunities / self.rounds

    @property
    def empirical_adversary_rate(self) -> float:
        """Adversarial blocks per round (compare to ``p nu n``, Eq. 27)."""
        return self.total_adversary_blocks / self.rounds

    @property
    def convergence_exceeds_adversary(self) -> bool:
        """The Lemma 1 event: more convergence opportunities than adversarial blocks."""
        return self.convergence_opportunities > self.total_adversary_blocks

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of the headline numbers (for tables)."""
        return {
            "rounds": self.rounds,
            "c": self.params.c,
            "nu": self.params.nu,
            "delta": self.params.delta,
            "convergence_opportunities": self.convergence_opportunities,
            "adversary_blocks": self.total_adversary_blocks,
            "empirical_convergence_rate": self.empirical_convergence_rate,
            "theoretical_convergence_rate": self.params.convergence_opportunity_probability,
            "empirical_adversary_rate": self.empirical_adversary_rate,
            "theoretical_adversary_rate": self.params.beta,
            "max_violation_depth": self.consistency.max_violation_depth,
            "growth_rate": self.growth_rate,
            "chain_quality": self.quality,
        }


class NakamotoSimulation:
    """Round-based simulation of Nakamoto's protocol under a chosen adversary.

    Parameters
    ----------
    params:
        Protocol parameters (``p``, ``n``, ``Δ``, ``nu``).
    adversary:
        The adversary strategy; defaults to :class:`PassiveAdversary`.
    rng:
        Source of randomness: a :class:`numpy.random.Generator`, an integer
        seed, a :class:`numpy.random.SeedSequence`, or ``None`` for the
        default seeded generator.  One generator drives every draw of the
        run (oracle successes and miner-id attribution), so a seed fully
        determines the trajectory.
    snapshot_interval:
        Record the public longest chain every this many rounds for the
        consistency check (Definition 1 compares chains at different rounds).
    oracle:
        Optional mining oracle override.  The default is a fresh
        :class:`MiningOracle` on ``rng``; pass a
        :class:`~repro.simulation.oracle.ScriptedMiningOracle` to replay
        pre-drawn per-round success counts (used by the batch-engine
        equivalence tests).

    Examples
    --------
    >>> from repro.params import parameters_from_c
    >>> params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
    >>> result = NakamotoSimulation(params, rng=np.random.default_rng(0)).run(2_000)
    >>> result.convergence_opportunities > 0
    True
    """

    def __init__(
        self,
        params: ProtocolParameters,
        adversary: Optional[AdversaryStrategy] = None,
        rng: SeedLike = None,
        snapshot_interval: int = 100,
        oracle=None,
    ):
        if snapshot_interval < 1:
            raise SimulationError("snapshot_interval must be >= 1")
        self.params = params
        self.adversary = adversary or PassiveAdversary(params.delta)
        if self.adversary.delta != params.delta:
            raise SimulationError(
                f"adversary delta ({self.adversary.delta}) must match params.delta "
                f"({params.delta})"
            )
        self.rng = resolve_rng(rng)
        self.snapshot_interval = snapshot_interval
        self.oracle = oracle
        self._oracle_consumed = False
        self.honest_count = max(int(round(params.honest_count)), 1)
        self.adversary_count = int(round(params.adversary_count))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, rounds: int) -> SimulationResult:
        """Execute ``rounds`` rounds and return the bundled result."""
        if rounds <= 0:
            raise SimulationError("rounds must be positive")

        if self.oracle is not None:
            # The default path builds a fresh oracle per run; an injected
            # oracle carries cursor/accounting state, so it drives one run only.
            if self._oracle_consumed:
                raise SimulationError(
                    "an injected oracle drives exactly one run(); construct a new "
                    "simulation (or inject a fresh oracle) for another run"
                )
            self._oracle_consumed = True
            oracle = self.oracle
        else:
            oracle = MiningOracle(self.params.p, self.rng)
        network = DeltaDelayNetwork(self.params.delta)
        population = HonestPopulation(self.honest_count)
        detector = ConvergenceOpportunityDetector(self.params.delta)
        # The global tree tracks every block ever mined (public, in flight or
        # withheld); it supplies heights for new blocks and final statistics.
        global_tree = BlockTree()

        honest_counts = np.zeros(rounds, dtype=np.int64)
        adversary_counts = np.zeros(rounds, dtype=np.int64)
        records: List[RoundRecord] = []
        snapshots: List[List[int]] = []
        snapshot_rounds: List[int] = []
        next_block_id = 1

        for round_index in range(1, rounds + 1):
            # 1. Deliveries: blocks whose delay expired reach every honest view.
            delivered = network.deliver(round_index)
            population.deliver(delivered)

            # 2. Honest mining: one parallel query per honest miner.  Miner-id
            #    attribution comes from the oracle's script when it has one
            #    (the scenario-engine replay path); otherwise it is drawn from
            #    this simulation's generator, as always.
            honest_successes = oracle.honest_successes(self.honest_count)
            honest_counts[round_index - 1] = honest_successes
            if honest_successes > 0:
                scripted_ids = getattr(oracle, "scripted_honest_miner_ids", None)
                miner_ids = scripted_ids() if scripted_ids is not None else None
                if miner_ids is None:
                    miner_ids = self.rng.choice(
                        self.honest_count, size=honest_successes, replace=False
                    )
                for miner_id in sorted(int(item) for item in miner_ids):
                    parent_id, parent_height = population.mining_parent_for(miner_id)
                    block = Block(
                        block_id=next_block_id,
                        parent_id=parent_id,
                        height=parent_height + 1,
                        round_mined=round_index,
                        miner_id=miner_id,
                        honest=True,
                    )
                    next_block_id += 1
                    global_tree.add(block)
                    population.record_own_block(block)
                    delay = self.adversary.delay_for_honest_block(block, round_index)
                    network.broadcast(block, round_index, delay)

            # 3. Adversarial mining: sequential queries extending the strategy's
            #    chosen parent (each success extends the previous one).
            adversary_successes = oracle.adversary_successes(self.adversary_count)
            adversary_counts[round_index - 1] = adversary_successes
            if adversary_successes > 0:
                parent_id = self.adversary.mining_parent(
                    population.public_view, round_index
                )
                parent_height = global_tree.get(parent_id).height
                for offset in range(adversary_successes):
                    block = Block(
                        block_id=next_block_id,
                        parent_id=parent_id,
                        height=parent_height + 1,
                        round_mined=round_index,
                        miner_id=self.honest_count + (offset % max(self.adversary_count, 1)),
                        honest=False,
                    )
                    next_block_id += 1
                    global_tree.add(block)
                    self.adversary.register_adversary_block(block, round_index)
                    parent_id, parent_height = block.block_id, block.height

            # 4. Releases: the strategy publishes withheld blocks (delay 0: the
            #    adversary wants them seen immediately).
            for block in self.adversary.blocks_to_release(
                population.public_view, round_index
            ):
                network.broadcast(block, round_index, 0)
            # A zero-delay broadcast is due at this very round, whose delivery
            # phase already ran; deliver it explicitly so "immediate
            # publication" takes effect before the next round's mining.
            population.deliver(network.deliver(round_index))

            # 5. Record the round.
            detector.observe(int(honest_successes))
            records.append(
                RoundRecord(
                    round_index=round_index,
                    honest_blocks=int(honest_successes),
                    adversary_blocks=int(adversary_successes),
                    public_chain_height=population.public_height,
                    adversary_private_height=getattr(
                        self.adversary, "private_height", 0
                    ),
                )
            )

            # 6. Periodic chain snapshots for the consistency check.
            if round_index % self.snapshot_interval == 0:
                snapshots.append(population.public_chain())
                snapshot_rounds.append(round_index)

        # Flush the network: let every in-flight block arrive (up to Δ extra
        # rounds of deliveries with no mining) so the final chain reflects all
        # broadcast blocks.
        for extra_round in range(rounds + 1, rounds + self.params.delta + 1):
            population.deliver(network.deliver(extra_round))
        final_chain = population.public_chain()
        snapshots.append(final_chain)
        snapshot_rounds.append(rounds)

        report = consistency_report(snapshots)
        return SimulationResult(
            params=self.params,
            rounds=rounds,
            adversary_name=self.adversary.describe(),
            honest_blocks_per_round=honest_counts,
            adversary_blocks_per_round=adversary_counts,
            records=records,
            convergence_opportunities=detector.count,
            total_honest_blocks=int(honest_counts.sum()),
            total_adversary_blocks=int(adversary_counts.sum()),
            chain_snapshots=snapshots,
            snapshot_rounds=snapshot_rounds,
            final_chain=final_chain,
            final_height=len(final_chain) - 1,
            consistency=report,
            growth_rate=chain_growth_rate(final_chain, rounds),
            quality=chain_quality(population.public_view, final_chain),
            adversary_releases=getattr(self.adversary, "releases", 0),
            adversary_deepest_fork=getattr(self.adversary, "deepest_fork", 0),
        )
