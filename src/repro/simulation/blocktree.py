"""Block trees and chains.

Every miner in the model keeps a *view* of the set of blocks it has received;
the view forms a tree rooted at genesis, and the protocol rule is to extend
the longest chain in the view.  This module implements the tree, the
longest-chain selection (with a deterministic tie-break so simulations are
reproducible) and the prefix operations that the consistency definition
(Definition 1) is phrased in.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .block import GENESIS_ID, Block, genesis_block

__all__ = ["BlockTree", "common_prefix_length", "is_prefix_up_to"]


class BlockTree:
    """A tree of blocks rooted at genesis.

    The tree is append-only: blocks are added with :meth:`add` and must
    reference a parent already present.  Chains are returned root-first as
    lists of block ids.

    Examples
    --------
    >>> tree = BlockTree()
    >>> block = Block(block_id=1, parent_id=0, height=1, round_mined=3, miner_id=7, honest=True)
    >>> tree.add(block)
    >>> tree.longest_chain()
    [0, 1]
    """

    def __init__(self) -> None:
        root = genesis_block()
        self._blocks: Dict[int, Block] = {root.block_id: root}
        self._children: Dict[int, List[int]] = {root.block_id: []}
        self._best_tip: int = root.block_id

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, block: Block) -> None:
        """Add a block whose parent is already in the tree.

        Adding a block that is already present is a no-op (re-delivery of a
        message is harmless); adding a *different* block under an existing id
        is an error.
        """
        existing = self._blocks.get(block.block_id)
        if existing is not None:
            if existing != block:
                raise SimulationError(
                    f"conflicting block for id {block.block_id}: {existing} vs {block}"
                )
            return
        if block.parent_id not in self._blocks:
            raise SimulationError(
                f"parent {block.parent_id} of block {block.block_id} is not in the tree"
            )
        parent = self._blocks[block.parent_id]
        if block.height != parent.height + 1:
            raise SimulationError(
                f"block {block.block_id} has height {block.height}, expected "
                f"{parent.height + 1} (parent height + 1)"
            )
        self._blocks[block.block_id] = block
        self._children[block.block_id] = []
        self._children[block.parent_id].append(block.block_id)
        # Longest-chain rule with a deterministic tie-break: prefer the chain
        # whose tip has the smallest id among equal heights (i.e. keep the
        # earlier-adopted chain, matching "accept the first longest chain").
        best = self._blocks[self._best_tip]
        if block.height > best.height:
            self._best_tip = block.block_id

    def add_all(self, blocks: Iterable[Block]) -> None:
        """Add several blocks; parents must precede children in the iterable."""
        for block in blocks:
            self.add(block)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: int) -> Block:
        """Return the block with the given id."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise SimulationError(f"unknown block id {block_id}") from None

    def block_ids(self) -> List[int]:
        """All block ids currently in the tree."""
        return list(self._blocks)

    def children_of(self, block_id: int) -> List[int]:
        """Ids of the direct children of a block."""
        if block_id not in self._blocks:
            raise SimulationError(f"unknown block id {block_id}")
        return list(self._children[block_id])

    @property
    def best_tip(self) -> int:
        """Id of the tip of the currently selected longest chain."""
        return self._best_tip

    @property
    def height(self) -> int:
        """Height of the longest chain (genesis contributes height 0)."""
        return self._blocks[self._best_tip].height

    def chain_to(self, block_id: int) -> List[int]:
        """The chain from genesis to ``block_id`` (inclusive), root-first."""
        chain: List[int] = []
        current: Optional[int] = block_id
        while current is not None:
            block = self.get(current)
            chain.append(block.block_id)
            current = block.parent_id
        chain.reverse()
        if chain[0] != GENESIS_ID:
            raise SimulationError("chain does not reach genesis")  # pragma: no cover
        return chain

    def longest_chain(self) -> List[int]:
        """The currently selected longest chain, root-first (ids)."""
        return self.chain_to(self._best_tip)

    def tips(self) -> List[int]:
        """All leaf block ids (blocks with no children)."""
        return [block_id for block_id, children in self._children.items() if not children]

    def honest_blocks(self) -> List[Block]:
        """All blocks mined by honest miners (genesis included)."""
        return [block for block in self._blocks.values() if block.honest]

    def adversarial_blocks(self) -> List[Block]:
        """All blocks mined by corrupted miners."""
        return [block for block in self._blocks.values() if not block.honest]

    def copy(self) -> "BlockTree":
        """A shallow copy of the tree (blocks are immutable, so this is safe)."""
        clone = BlockTree.__new__(BlockTree)
        clone._blocks = dict(self._blocks)
        clone._children = {key: list(value) for key, value in self._children.items()}
        clone._best_tip = self._best_tip
        return clone


def common_prefix_length(first: Sequence[int], second: Sequence[int]) -> int:
    """Length of the longest common prefix of two root-first chains."""
    length = 0
    for left, right in zip(first, second):
        if left != right:
            break
        length += 1
    return length


def is_prefix_up_to(
    earlier: Sequence[int], later: Sequence[int], confirmations: int
) -> bool:
    """The consistency predicate of Definition 1 for one pair of chains.

    ``True`` when all but the last ``confirmations`` blocks of ``earlier`` form
    a prefix of ``later``.
    """
    if confirmations < 0:
        raise SimulationError("confirmations must be non-negative")
    stable = list(earlier[: max(len(earlier) - confirmations, 0)])
    return list(later[: len(stable)]) == stable
