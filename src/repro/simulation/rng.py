"""Random-generator plumbing for the simulation layer.

Every stochastic component of :mod:`repro.simulation` draws from a single
:class:`numpy.random.Generator` threaded through explicitly — there is no
module-level RNG and no call to the legacy global ``numpy.random`` state.
This module centralises the two operations that keep experiments
reproducible and shardable:

* :func:`resolve_rng` — normalise "whatever the caller passed" (nothing, an
  integer seed, a :class:`~numpy.random.SeedSequence` or an existing
  generator) into a :class:`numpy.random.Generator`;
* :func:`spawn_rngs` — derive ``count`` statistically independent child
  generators from one seed, so per-trial / per-scenario streams never
  overlap no matter how work is sharded across processes.

Child spawning uses :meth:`numpy.random.SeedSequence.spawn`, which is the
NumPy-recommended mechanism for parallel streams: children are independent
of each other and of the parent, and the assignment "trial ``t`` gets child
``t``" is stable regardless of execution order.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["SeedLike", "resolve_rng", "spawn_rngs", "derive_seed_sequence"]

#: Anything accepted where a source of randomness is expected.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def resolve_rng(rng: SeedLike = None, *, default_seed: int = 0) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` resolves to a fresh generator seeded with ``default_seed`` (so
    the no-argument path stays deterministic, matching the simulator's
    historical behaviour); integers and seed sequences are fed to
    :func:`numpy.random.default_rng`; generators pass through unchanged.
    """
    if rng is None:
        return np.random.default_rng(default_seed)
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def derive_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` corresponding to ``seed``.

    Generators cannot be converted back into seed sequences, so passing a
    :class:`~numpy.random.Generator` here raises ``TypeError`` — callers that
    need child streams from a live generator should use :func:`spawn_rngs`,
    which handles that case via :meth:`numpy.random.Generator.spawn`.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "cannot derive a SeedSequence from a live Generator; "
            "pass the seed itself or use spawn_rngs"
        )
    return np.random.SeedSequence(0 if seed is None else seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """``count`` independent child generators derived from ``seed``.

    Accepts the same inputs as :func:`resolve_rng`; a live generator spawns
    children from its own internal seed sequence, anything else goes through
    :class:`~numpy.random.SeedSequence` spawning.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count!r}")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(count))
    sequence = derive_seed_sequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
