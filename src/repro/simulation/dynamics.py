"""Dynamic network dynamics: churn, partitions, eclipses and adversary placement.

The topology subsystem (:mod:`repro.simulation.topology`) relaxed the paper's
fixed-Δ delay model to *static* heterogeneous networks: a peer graph is wired
once and every block's delivery offset is drawn from the same distribution.
The paper's consistency guarantees, however, are most interesting exactly
when the static assumption is stressed — peers churn, the adversary cuts the
honest gossip graph for a bounded window, and corrupted miners occupy
privileged graph positions.  This module makes the network a *function of
the round index*:

* **dynamics schedules** — a :class:`DynamicsSchedule` is an ordered list of
  round-indexed events: :class:`ChurnEvent` (peers leave and later rejoin),
  :class:`LatencyDriftEvent` (edge latencies scale for a window) and
  :class:`PartitionEvent` (the adversary cuts the peer graph — either one
  node set from the rest, or every edge at once, the full eclipse — and
  heals it after ``duration`` rounds).  A schedule compiles, against a base
  :class:`~repro.simulation.topology.PeerGraphTopology`, into per-round
  delivery tensors: ``offsets[r, v]`` is the delivery offset of a block
  mined at round ``r`` at peer ``v``, and ``active[r, v]`` marks which peers
  can originate blocks at round ``r``.  Without a topology only full-eclipse
  partitions are meaningful and the compilation degenerates to a per-round
  offset vector over the constant-Δ worst case.

* **compilation semantics** — the event timeline splits the run into
  *epochs* of constant network state.  Within an epoch, gossip follows the
  epoch's shortest-path distances exactly as in the static subsystem.  At an
  epoch boundary, in-flight transmissions are discarded and every peer that
  already holds the block re-gossips it under the new graph (gossip has no
  committed delivery schedule — unlike the abstract Δ-delay network, a cut
  cable drops what it was carrying).  A block is *delivered* at the first
  time ``T`` at which every currently-active peer holds it, and its offset
  is ``min(T, start_of_completion_epoch + Δ) - r``: the Δ guarantee of
  Section III continues to bound unobstructed transit, while rounds spent
  waiting for a cut to heal (the adversary violating the guarantee) are not
  capped.  A schedule whose terminal network state can never deliver some
  block — a forever partition, churn that permanently disconnects the
  active subgraph — is rejected at compile time.

* **time-varying delay model** — :class:`TimeVaryingDelayModel` wraps a
  compiled schedule as a :class:`~repro.simulation.topology.DelayModel`, so
  both engines (:class:`~repro.simulation.batch.BatchSimulation` and
  :class:`~repro.simulation.scenarios.ScenarioSimulation`) consume dynamics
  through the exact interface they already speak.  An *empty* schedule is
  bit-identical to the static world: with a topology it draws the same
  origins and offsets as
  :class:`~repro.simulation.topology.PeerGraphDelayModel`, and without one
  it is flagged ``trivial`` so the engines keep the legacy constant-Δ fast
  path, reproducing the pre-dynamics outputs exactly.

* **partition/eclipse scenarios** — :class:`PartitionScenario` extends the
  scenario registry with attacks where the adversary schedules the cut
  itself and mines privately inside it: ``eclipse`` (cut everything,
  release on heal to orphan the in-flight honest blocks) and
  ``partition_attack`` (accumulate a private lead during the cut, then
  displace a ``target_depth``-deep honest suffix after healing — the
  T-consistency violation the paper's Lemma 1 prices).

* **adversary placement** — :class:`AdversaryPlacement` positions the
  corrupted miners on the gossip graph.  A non-instant placement makes
  adversarial releases propagate through gossip like any honest block
  (``hub`` releases from the best-connected peer, ``leaf`` from the worst,
  ``random`` from a seeded draw), replacing the legacy assumption that the
  adversary is perfectly connected to everyone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend import get_backend, get_dtype_policy
from ..errors import SimulationError
from ..observability import METRICS as _METRICS, TRACE as _TRACE
from .rng import resolve_rng
from .scenarios import Scenario, register_scenario
from .topology import (
    _UNREACHED,
    DelayModel,
    PeerGraphTopology,
    register_delay_model,
)

__all__ = [
    "ChurnEvent",
    "LatencyDriftEvent",
    "PartitionEvent",
    "DynamicsSchedule",
    "CompiledSchedule",
    "compile_schedule",
    "reference_compile_schedule",
    "compile_eclipse_offsets",
    "TimeVaryingDelayModel",
    "PLACEMENT_KINDS",
    "AdversaryPlacement",
    "list_placements",
    "PartitionScenario",
    "partition_windows",
]

#: Chunk size (pending cells) for the masked min-plus continuation kernel,
#: keeping the (cells, nodes, nodes) broadcast temporaries around ~16 MB.
_CONTINUATION_CHUNK = 512


def _coerce_round(value, name: str) -> int:
    """The shared integer-coercion rule of :func:`repro.params.coerce_positive_int`
    with the floor relaxed to 0 (rounds and durations may legitimately be 0)."""
    if isinstance(value, bool):
        raise SimulationError(f"{name} must be a non-negative integer, got {value!r}")
    try:
        coerced = int(value)
    except (TypeError, ValueError, OverflowError):
        raise SimulationError(
            f"{name} must be a non-negative integer, got {value!r}"
        ) from None
    if coerced != value or coerced < 0:
        raise SimulationError(f"{name} must be a non-negative integer, got {value!r}")
    return coerced


def _coerce_duration(value, name: str) -> Optional[int]:
    if value is None:
        return None
    return _coerce_round(value, name)


def _coerce_nodes(nodes, name: str) -> Tuple[int, ...]:
    try:
        values = tuple(int(node) for node in nodes)
    except TypeError:
        raise SimulationError(
            f"{name} must be a sequence of node indices, got {nodes!r}"
        ) from None
    if not values:
        raise SimulationError(f"{name} must name at least one node")
    if any(node < 0 for node in values):
        raise SimulationError(f"{name} must be non-negative node indices")
    if len(set(values)) != len(values):
        raise SimulationError(f"{name} must not repeat nodes")
    return values


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnEvent:
    """Peers ``nodes`` leave the network at ``round`` for ``duration`` rounds.

    While away a peer neither originates, relays nor requires delivery of
    blocks; on rejoining it re-enters the gossip graph with its original
    edges (new blocks reach it through normal flooding; its chain bootstrap
    is assumed instantaneous, as for any freshly-synced node).
    ``duration=None`` means the peers never return — legal only while the
    remaining active subgraph stays connected.
    """

    round: int
    nodes: Tuple[int, ...]
    duration: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "round", _coerce_round(self.round, "churn round"))
        object.__setattr__(self, "nodes", _coerce_nodes(self.nodes, "churn nodes"))
        object.__setattr__(
            self, "duration", _coerce_duration(self.duration, "churn duration")
        )

    @property
    def end(self) -> Optional[int]:
        return None if self.duration is None else self.round + self.duration

    def payload(self) -> Dict[str, object]:
        return {
            "kind": "churn",
            "round": self.round,
            "nodes": list(self.nodes),
            "duration": self.duration,
        }


@dataclass(frozen=True)
class LatencyDriftEvent:
    """Every edge latency scales by ``factor`` for ``duration`` rounds.

    Scaled latencies are rounded to the nearest integer and floored at 1
    (latencies are whole rounds).  ``duration=None`` makes the drift
    permanent; overlapping drifts compose multiplicatively in event order.
    """

    round: int
    factor: float
    duration: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "round", _coerce_round(self.round, "drift round"))
        if not (isinstance(self.factor, (int, float)) and self.factor > 0.0):
            raise SimulationError(
                f"drift factor must be a positive number, got {self.factor!r}"
            )
        object.__setattr__(self, "factor", float(self.factor))
        object.__setattr__(
            self, "duration", _coerce_duration(self.duration, "drift duration")
        )

    @property
    def end(self) -> Optional[int]:
        return None if self.duration is None else self.round + self.duration

    def payload(self) -> Dict[str, object]:
        return {
            "kind": "drift",
            "round": self.round,
            "factor": self.factor,
            "duration": self.duration,
        }


@dataclass(frozen=True)
class PartitionEvent:
    """The adversary cuts the peer graph at ``round``, healing after ``duration``.

    ``nodes`` names one side of the cut: every edge between the set and its
    complement is severed for the window.  ``nodes=None`` is the *full
    eclipse* — every edge is cut, so no honest block mined inside the window
    reaches anyone else until the heal (this is also the only partition
    shape meaningful without an explicit topology).  ``duration=None``
    (never heal) is rejected at compile time: a forever partition leaves
    blocks undeliverable, outside every delivery model.
    """

    round: int
    duration: Optional[int]
    nodes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "round", _coerce_round(self.round, "partition round")
        )
        object.__setattr__(
            self, "duration", _coerce_duration(self.duration, "partition duration")
        )
        if self.nodes is not None:
            object.__setattr__(
                self, "nodes", _coerce_nodes(self.nodes, "partition nodes")
            )

    @property
    def end(self) -> Optional[int]:
        return None if self.duration is None else self.round + self.duration

    def payload(self) -> Dict[str, object]:
        return {
            "kind": "partition",
            "round": self.round,
            "duration": self.duration,
            "nodes": None if self.nodes is None else list(self.nodes),
        }


DynamicsEvent = Union[ChurnEvent, LatencyDriftEvent, PartitionEvent]


# ----------------------------------------------------------------------
# Schedule
# ----------------------------------------------------------------------
class DynamicsSchedule:
    """An ordered, validated list of round-indexed network events.

    Events must be supplied sorted by their start round (ties allowed);
    unsorted schedules are rejected so that a mis-assembled experiment
    fails loudly instead of silently reordering the attack timeline.
    An empty schedule is the static network — the exact world of
    :mod:`repro.simulation.topology`.
    """

    def __init__(self, events: Sequence[DynamicsEvent] = ()):
        events = tuple(events)
        for event in events:
            if not isinstance(event, (ChurnEvent, LatencyDriftEvent, PartitionEvent)):
                raise SimulationError(
                    f"unknown dynamics event {event!r}; expected ChurnEvent, "
                    "LatencyDriftEvent or PartitionEvent"
                )
        starts = [event.round for event in events]
        if starts != sorted(starts):
            raise SimulationError(
                "dynamics events must be ordered by start round; got rounds "
                f"{starts}"
            )
        self.events = events

    @property
    def empty(self) -> bool:
        """Whether the schedule leaves the network static."""
        return not self.events

    @property
    def requires_topology(self) -> bool:
        """Whether any event is meaningless without an explicit peer graph."""
        return any(
            isinstance(event, (ChurnEvent, LatencyDriftEvent))
            or (isinstance(event, PartitionEvent) and event.nodes is not None)
            for event in self.events
        )

    def payload(self) -> Dict[str, object]:
        """Cache-key description (JSON-serializable, order-preserving)."""
        return {"events": [event.payload() for event in self.events]}

    def describe(self) -> str:
        if self.empty:
            return "static"
        return ", ".join(
            f"{event.payload()['kind']}@{event.round}" for event in self.events
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DynamicsSchedule({self.describe()})"


# ----------------------------------------------------------------------
# Compilation: no-topology (full-eclipse) mode
# ----------------------------------------------------------------------
def compile_eclipse_offsets(
    schedule: DynamicsSchedule, rounds: int, delta: int
) -> np.ndarray:
    """Per-round delivery offsets over the constant-Δ worst case.

    Without a peer graph the base network is the paper's abstract Δ-delay
    model: every block's offset is Δ.  A full-eclipse partition obstructs
    every block *mined inside* its window — the offset becomes the wait
    until the heal plus a fresh Δ of (worst-case) post-heal transit.
    Blocks mined before the cut ride the Δ-delay network's committed
    delivery schedule and are unaffected (delivery rounds are fixed at
    send time in that model, unlike gossip).  Overlapping windows take the
    slowest obstruction.
    """
    if rounds < 1:
        raise SimulationError(f"rounds must be positive, got {rounds!r}")
    if delta < 1:
        raise SimulationError(f"delta must be >= 1, got {delta!r}")
    xp = get_backend()
    offsets = xp.full(rounds, delta, dtype=xp.int64)
    for event in schedule.events:
        if not isinstance(event, PartitionEvent) or event.nodes is not None:
            raise SimulationError(
                f"event {event!r} requires an explicit topology; pass one to "
                "TimeVaryingDelayModel"
            )
        if event.duration is None:
            raise SimulationError(
                "a partition that never heals leaves the network disconnected "
                "forever; blocks mined inside it can never be delivered"
            )
        heal = event.round + event.duration
        low, high = max(event.round, 0), min(heal, rounds)
        if low < high:
            window = xp.arange(low, high, dtype=xp.int64)
            xp.maximum(offsets[low:high], heal - window + delta, out=offsets[low:high])
    return xp.to_host(offsets)


# ----------------------------------------------------------------------
# Compilation: topology mode
# ----------------------------------------------------------------------
@dataclass
class _EpochState:
    """Constant network state over ``[start, end)`` (``end=None`` → forever)."""

    start: int
    end: Optional[int]
    latencies: np.ndarray
    active: np.ndarray


@dataclass
class CompiledSchedule:
    """A schedule compiled into per-round delivery tensors.

    ``offsets`` has shape ``(rounds, nodes)`` in topology mode (entry
    ``[r, v]`` is the delivery offset of a block mined at round ``r`` at
    peer ``v``; meaningful only where ``active[r, v]``) or ``(rounds,)``
    in full-eclipse mode.  ``uniform_origins`` is true when every node is
    active in every round, letting the delay model keep the static
    subsystem's integer origin draw (and therefore its bit stream).
    """

    offsets: np.ndarray
    active: Optional[np.ndarray]
    max_offset: int
    uniform_origins: bool


def _epoch_states(
    schedule: DynamicsSchedule, topology: PeerGraphTopology, rounds: int
) -> List[_EpochState]:
    """Split the timeline into epochs of constant graph state.

    Boundaries are event starts and ends (zero-length epochs dropped,
    consecutive identical states merged — so a ``duration=0`` event leaves
    no trace at all).  The final epoch is open-ended: the terminal network
    state persists past the simulation horizon, which is what lets blocks
    mined near the end of the run complete delivery.
    """
    n = topology.n_nodes
    for event in schedule.events:
        nodes = getattr(event, "nodes", None)
        if nodes is not None and max(nodes) >= n:
            raise SimulationError(
                f"event {event!r} names node {max(nodes)} but the topology "
                f"has only {n} nodes"
            )
    boundaries = {0, rounds}
    for event in schedule.events:
        boundaries.add(event.round)
        if event.end is not None:
            boundaries.add(event.end)
    cuts = sorted(boundaries)
    spans: List[Tuple[int, Optional[int]]] = [
        (a, b) for a, b in zip(cuts, cuts[1:]) if a < b
    ]
    spans.append((cuts[-1], None))

    states: List[_EpochState] = []
    for start, end in spans:
        active = np.ones(n, dtype=bool)
        latencies = topology.latencies.copy()
        for event in schedule.events:
            # Boundaries include every event start and end, so an event
            # covers the whole epoch iff it has started and has not ended
            # by the epoch's start.
            covers = event.round <= start and (
                event.end is None or event.end > start
            )
            if not covers:
                continue
            if isinstance(event, ChurnEvent):
                active[list(event.nodes)] = False
            elif isinstance(event, LatencyDriftEvent):
                edges = latencies > 0
                scaled = np.rint(latencies[edges] * event.factor).astype(np.int64)
                latencies[edges] = np.maximum(scaled, 1)
            else:  # PartitionEvent
                if event.nodes is None:
                    latencies[:, :] = 0
                else:
                    side = np.zeros(n, dtype=bool)
                    side[list(event.nodes)] = True
                    latencies[np.ix_(side, ~side)] = 0
                    latencies[np.ix_(~side, side)] = 0
        if not active.any():
            raise SimulationError(
                "the dynamics schedule churns out every peer at once; at "
                "least one active peer is required in every epoch"
            )
        latencies[~active, :] = 0
        latencies[:, ~active] = 0
        if states and states[-1].end == start and np.array_equal(
            states[-1].latencies, latencies
        ) and np.array_equal(states[-1].active, active):
            states[-1].end = end
            continue
        states.append(_EpochState(start, end, latencies, active))
    return states


def _epoch_distances(latencies, active):
    """All-pairs gossip distances for one epoch's graph (vectorized min-plus).

    Inactive peers neither relay nor receive: their rows and columns
    (including the diagonal) are pinned at the unreached sentinel.  Inputs
    and output are backend arrays — this is the inner kernel of the
    schedule compiler.
    """
    xp = get_backend()
    n = latencies.shape[0]
    distance = xp.where(latencies > 0, latencies, _UNREACHED)
    diagonal = xp.arange(n)
    distance[diagonal, diagonal] = 0
    distance[~active, :] = _UNREACHED
    distance[:, ~active] = _UNREACHED
    for pivot in xp.to_host(xp.nonzero(active)[0]):
        pivot = int(pivot)
        xp.minimum(
            distance,
            distance[:, pivot, None] + distance[None, pivot, :],
            out=distance,
        )
    xp.minimum(distance, _UNREACHED, out=distance)
    return distance


def _masked_min_plus(delivered, distance):
    """``out[c, w] = min over delivered[c] sources u of distance[u, w]``."""
    xp = get_backend()
    cells, n = delivered.shape
    out = xp.full((cells, n), _UNREACHED, dtype=xp.int64)
    for start in range(0, cells, _CONTINUATION_CHUNK):
        stop = min(start + _CONTINUATION_CHUNK, cells)
        masked = xp.where(
            delivered[start:stop, :, None], distance[None, :, :], _UNREACHED
        )
        out[start:stop] = masked.min(axis=1)
    return out


def compile_schedule(
    schedule: DynamicsSchedule,
    topology: PeerGraphTopology,
    rounds: int,
    delta: int,
) -> CompiledSchedule:
    """Compile a schedule against a topology into per-round delivery tensors.

    This is the vectorized kernel the dynamics benchmark gates at ≥5x over
    :func:`reference_compile_schedule`.  Per epoch it computes static
    gossip distances once (min-plus Floyd–Warshall) and classifies mining
    rounds into *interior* cells — delivery completes inside the epoch, so
    the offset is the origin's capped delivery radius, independent of the
    round — and *spanning* cells, which carry their reach-time vectors
    across boundaries through the re-gossip continuation until the first
    epoch in which every active peer holds the block.

    Raises :class:`~repro.errors.SimulationError` when some block can never
    be delivered (a disconnected-forever schedule).
    """
    if rounds < 1:
        raise SimulationError(f"rounds must be positive, got {rounds!r}")
    if delta < 1:
        raise SimulationError(f"delta must be >= 1, got {delta!r}")
    xp = get_backend()
    n = topology.n_nodes
    epochs = _epoch_states(schedule, topology, rounds)
    offsets = xp.zeros((rounds, n), dtype=xp.int64)
    active_rounds = xp.full((rounds, n), True, dtype=xp.bool_)

    # Pending spanning cells: absolute reach times plus their coordinates.
    pending_reach = xp.empty((0, n), dtype=xp.int64)
    pending_round = xp.empty((0,), dtype=xp.int64)
    pending_origin = xp.empty((0,), dtype=xp.int64)

    for epoch in epochs:
        distance = _epoch_distances(
            xp.from_host(epoch.latencies), xp.from_host(epoch.active)
        )
        epoch_active = xp.from_host(epoch.active)
        start, end = epoch.start, epoch.end

        # 1. Continue pending cells across the boundary into this epoch:
        #    in-flight transmissions are discarded, every delivered active
        #    peer re-gossips under the new graph.
        if pending_reach.shape[0]:
            delivered = pending_reach <= start
            kept = xp.where(delivered, pending_reach, _UNREACHED)
            contribution = _masked_min_plus(delivered, distance)
            pending_reach = xp.minimum(
                kept, xp.minimum(start + contribution, _UNREACHED)
            )
            reach_active = xp.where(epoch_active[None, :], pending_reach, -1)
            completion = reach_active.max(axis=1)
            completion = xp.maximum(completion, start)
            if end is None:
                complete = completion < _UNREACHED
                if not complete.all():
                    raise SimulationError(
                        "the dynamics schedule leaves the network disconnected "
                        "forever: some blocks can never reach every active peer"
                    )
            else:
                complete = (completion < _UNREACHED) & (completion <= end)
            if complete.any():
                rows = pending_round[complete]
                cols = pending_origin[complete]
                capped = xp.minimum(completion[complete], start + delta)
                offsets[rows, cols] = capped - rows
            pending_reach = pending_reach[~complete]
            pending_round = pending_round[~complete]
            pending_origin = pending_origin[~complete]

        # 2. New cells mined in this epoch (only rounds inside the horizon).
        low = min(start, rounds)
        high = rounds if end is None else min(end, rounds)
        if low >= high:
            continue
        active_rounds[low:high, :] = epoch_active[None, :]
        reach_active = xp.where(epoch_active[None, :], distance, -1)
        radius = xp.minimum(reach_active.max(axis=1), _UNREACHED)
        mined_rounds = xp.arange(low, high, dtype=xp.int64)
        origins = xp.nonzero(epoch_active)[0]
        if end is None:
            if (radius[origins] >= _UNREACHED).any():
                raise SimulationError(
                    "the dynamics schedule leaves the network disconnected "
                    "forever: some blocks can never reach every active peer"
                )
            offsets[low:high][:, origins] = xp.minimum(radius[origins], delta)[
                None, :
            ]
            continue
        # Interior cells complete by the boundary; spanning cells enter the
        # pending set with their absolute reach-time vectors.
        interior = mined_rounds[:, None] + radius[None, origins] <= end
        offsets[low:high][:, origins] = xp.where(
            interior, xp.minimum(radius[None, origins], delta), 0
        )
        span_row, span_col = xp.nonzero(~interior)
        if span_row.size:
            new_rounds = mined_rounds[span_row]
            new_origins = origins[span_col]
            new_reach = xp.minimum(
                new_rounds[:, None] + distance[new_origins, :], _UNREACHED
            )
            pending_reach = xp.concatenate([pending_reach, new_reach], axis=0)
            pending_round = xp.concatenate([pending_round, new_rounds])
            pending_origin = xp.concatenate([pending_origin, new_origins])

    if pending_reach.shape[0]:  # pragma: no cover - the open epoch drains all
        raise SimulationError(
            "internal error: pending cells survived the open terminal epoch"
        )
    offsets = xp.to_host(offsets)
    active_host = xp.to_host(active_rounds)
    uniform = bool(active_host.all())
    max_offset = int(offsets[active_host].max(initial=0))
    return CompiledSchedule(
        offsets=offsets,
        active=active_host,
        max_offset=max_offset,
        uniform_origins=uniform,
    )


def reference_compile_schedule(
    schedule: DynamicsSchedule,
    topology: PeerGraphTopology,
    rounds: int,
    delta: int,
) -> CompiledSchedule:
    """Pure-Python per-cell reference for :func:`compile_schedule`.

    Recomputes every epoch's distances with a per-source Dijkstra flood and
    chains each ``(round, origin)`` cell through the boundary re-gossip
    recursion one at a time — the honest scalar baseline the benchmark
    gate measures the vectorized kernel against, and (given the same
    schedule) exactly equal to it.
    """
    import heapq

    if rounds < 1:
        raise SimulationError(f"rounds must be positive, got {rounds!r}")
    if delta < 1:
        raise SimulationError(f"delta must be >= 1, got {delta!r}")
    n = topology.n_nodes
    epochs = _epoch_states(schedule, topology, rounds)
    unreached = int(_UNREACHED)

    def epoch_distances(state: _EpochState) -> List[List[int]]:
        neighbours: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for a in range(n):
            for b in range(n):
                weight = int(state.latencies[a, b])
                if weight > 0:
                    neighbours[a].append((b, weight))
        table: List[List[int]] = []
        for source in range(n):
            best = [unreached] * n
            if state.active[source]:
                best[source] = 0
                frontier = [(0, source)]
                while frontier:
                    reached_at, node = heapq.heappop(frontier)
                    if reached_at > best[node]:
                        continue
                    for neighbour, weight in neighbours[node]:
                        candidate = reached_at + weight
                        if candidate < best[neighbour]:
                            best[neighbour] = candidate
                            heapq.heappush(frontier, (candidate, neighbour))
            table.append(best)
        return table

    distances = [epoch_distances(state) for state in epochs]
    offsets = np.zeros((rounds, n), dtype=np.int64)
    active_rounds = np.ones((rounds, n), dtype=bool)

    for index, state in enumerate(epochs):
        low = min(state.start, rounds)
        high = rounds if state.end is None else min(state.end, rounds)
        for mined in range(low, high):
            for origin in range(n):
                if not state.active[origin]:
                    active_rounds[mined, origin] = False
                    continue
                reach = [
                    min(mined + d, unreached) if d < unreached else unreached
                    for d in distances[index][origin]
                ]
                cell_epoch = index
                while True:
                    current = epochs[cell_epoch]
                    completion = max(
                        (reach[w] for w in range(n) if current.active[w]),
                        default=unreached,
                    )
                    completion = max(completion, current.start)
                    within = current.end is None or completion <= current.end
                    if completion < unreached and within:
                        capped = min(
                            completion, max(current.start, mined) + delta
                        )
                        offsets[mined, origin] = capped - mined
                        break
                    if current.end is None:
                        raise SimulationError(
                            "the dynamics schedule leaves the network "
                            "disconnected forever: some blocks can never "
                            "reach every active peer"
                        )
                    boundary = current.end
                    cell_epoch += 1
                    following = distances[cell_epoch]
                    delivered = [w for w in range(n) if reach[w] <= boundary]
                    new_reach = []
                    for w in range(n):
                        best = reach[w] if reach[w] <= boundary else unreached
                        for u in delivered:
                            candidate = boundary + following[u][w]
                            if candidate < best:
                                best = candidate
                        new_reach.append(min(best, unreached))
                    reach = new_reach

    uniform = bool(active_rounds.all())
    max_offset = int(offsets[active_rounds].max(initial=0))
    return CompiledSchedule(
        offsets=offsets,
        active=active_rounds,
        max_offset=max_offset,
        uniform_origins=uniform,
    )


# ----------------------------------------------------------------------
# The time-varying delay model
# ----------------------------------------------------------------------
class TimeVaryingDelayModel(DelayModel):
    """Round-indexed delivery offsets compiled from a dynamics schedule.

    Parameters
    ----------
    schedule:
        A :class:`DynamicsSchedule` (``None`` means empty/static).
    topology:
        Optional base :class:`~repro.simulation.topology.PeerGraphTopology`.
        With one, blocks originate at uniformly random *active* peers and
        offsets come from :func:`compile_schedule`; without one the base
        network is the constant-Δ worst case and only full-eclipse
        partitions are allowed (:func:`compile_eclipse_offsets`).

    An empty schedule is exactly the static world: with a topology the
    draws match :class:`~repro.simulation.topology.PeerGraphDelayModel`
    bit for bit (same origin stream, same capped radii); without one the
    model is ``trivial`` and the engines keep the legacy constant-Δ path,
    consuming no entropy.

    Unlike every static delay model, compiled offsets may *exceed* Δ: a
    partition is the adversary breaking the Δ guarantee for a bounded
    window.  Engines size their delivery pipelines via :meth:`delay_cap`.
    """

    name = "time_varying"

    def __init__(
        self,
        schedule: Optional[DynamicsSchedule] = None,
        topology: Optional[PeerGraphTopology] = None,
    ):
        if schedule is None:
            schedule = DynamicsSchedule()
        if not isinstance(schedule, DynamicsSchedule):
            raise SimulationError(
                f"schedule must be a DynamicsSchedule, got {schedule!r}"
            )
        if topology is not None and not isinstance(topology, PeerGraphTopology):
            raise SimulationError(
                f"topology must be a PeerGraphTopology, got {topology!r}"
            )
        if schedule.requires_topology and topology is None:
            raise SimulationError(
                "this schedule contains churn, drift or node-set partitions, "
                "which are meaningless without a peer-graph topology"
            )
        self.schedule = schedule
        self.topology = topology
        self._compiled: Dict[Tuple[int, int], CompiledSchedule] = {}

    @property
    def trivial(self) -> bool:  # type: ignore[override]
        # Static + no graph is exactly the constant-Delta worst case the
        # engines already hard-code, so they may skip the draw entirely.
        return self.schedule.empty and self.topology is None

    def compiled(self, rounds: int, delta: int) -> CompiledSchedule:
        """The compiled tensors for one ``(rounds, delta)`` shape, cached."""
        key = (int(rounds), int(delta))
        if key not in self._compiled:
            _METRICS.increment("engine.dynamics.schedule_compilations")
            with _TRACE.span(
                "dynamics.compile",
                rounds=key[0],
                delta=key[1],
                events=len(self.schedule.events),
                topology=self.topology is not None,
            ):
                if self.topology is None:
                    offsets = compile_eclipse_offsets(
                        self.schedule, rounds, delta
                    )
                    self._compiled[key] = CompiledSchedule(
                        offsets=offsets,
                        active=None,
                        max_offset=int(offsets.max(initial=delta)),
                        uniform_origins=True,
                    )
                else:
                    self._compiled[key] = compile_schedule(
                        self.schedule, self.topology, rounds, delta
                    )
        return self._compiled[key]

    def delay_cap(self, delta: int, rounds: Optional[int] = None) -> int:
        """Largest offset any draw can produce (≥ Δ; partitions may exceed it)."""
        if rounds is None:
            raise SimulationError(
                "TimeVaryingDelayModel.delay_cap needs the round count to "
                "compile its schedule"
            )
        return max(int(delta), self.compiled(rounds, delta).max_offset)

    def draw_delays(
        self, trials: int, rounds: int, delta: int, rng: np.random.Generator
    ):
        self._check_shape(trials, rounds, delta)
        xp = get_backend()
        index_dtype = get_dtype_policy().index_dtype(xp)
        compiled = self.compiled(rounds, delta)
        offsets = xp.asarray(xp.from_host(compiled.offsets), dtype=index_dtype)
        if self.topology is None:
            # Offsets are deterministic per round; no entropy is consumed,
            # so the mining-trace stream matches the static engines exactly.
            return xp.tile(offsets, (trials, 1))
        nodes = self.topology.n_nodes
        row_index = xp.arange(rounds, dtype=xp.int64)[None, :]
        if compiled.uniform_origins:
            # Same draw as PeerGraphDelayModel: bit-identical origin stream.
            sources = xp.integers(rng, 0, nodes, (trials, rounds))
            return offsets[row_index, sources]
        # Churn: sample uniformly among the peers active at each round.
        active = xp.from_host(compiled.active)
        counts = active.sum(axis=1, dtype=xp.int64)
        order = xp.argsort(~active, axis=1, kind="stable")
        picks = xp.minimum(
            xp.asarray(
                xp.random(rng, (trials, rounds)) * counts[None, :],
                dtype=xp.int64,
            ),
            counts[None, :] - 1,
        )
        sources = order[row_index, picks]
        return offsets[row_index, sources]

    def payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "schedule": self.schedule.payload(),
            "topology": None if self.topology is None else self.topology.payload(),
        }

    def describe(self) -> str:
        base = "fixed_delta" if self.topology is None else repr(self.topology)
        return f"{self.name}({self.schedule.describe()} over {base})"


register_delay_model("time_varying", TimeVaryingDelayModel)


# ----------------------------------------------------------------------
# Adversary placement
# ----------------------------------------------------------------------
#: Where the corrupted miners sit on the gossip graph.
PLACEMENT_KINDS = ("instant", "hub", "leaf", "random")


def list_placements() -> List[str]:
    """Names of the supported adversary placements, sorted."""
    return sorted(PLACEMENT_KINDS)


@dataclass(frozen=True)
class AdversaryPlacement:
    """Graph position of the corrupted miners, priced as a release delay.

    ``instant`` is the legacy assumption — the adversary is perfectly
    connected and its releases reach every honest miner in the same round.
    The other kinds make releases propagate through gossip from the
    adversary's position: ``hub`` releases from the peer with the smallest
    delivery radius, ``leaf`` from the largest, ``random`` from a seeded
    uniform draw.  Without a topology the radii degenerate to the model
    extremes (``hub`` → 0, ``leaf`` → Δ, ``random`` → seeded in [0, Δ]).
    The release delay is always capped at Δ: the network guarantee binds
    the adversary's own broadcasts too once they are on the wire.
    """

    kind: str = "instant"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in PLACEMENT_KINDS:
            raise SimulationError(
                f"placement kind must be one of {PLACEMENT_KINDS}, got "
                f"{self.kind!r}"
            )
        if isinstance(self.seed, bool):
            raise SimulationError(
                f"placement seed must be an integer, got {self.seed!r}"
            )
        try:
            seed = int(self.seed)
        except (TypeError, ValueError, OverflowError):
            raise SimulationError(
                f"placement seed must be an integer, got {self.seed!r}"
            ) from None
        if seed != self.seed:
            raise SimulationError(
                f"placement seed must be an integer, got {self.seed!r}"
            )
        object.__setattr__(self, "seed", seed)

    def release_delay(
        self, topology: Optional[PeerGraphTopology], delta: int
    ) -> int:
        """Rounds an adversarial release takes to reach every honest miner."""
        if delta < 1:
            raise SimulationError(f"delta must be >= 1, got {delta!r}")
        if self.kind == "instant":
            return 0
        if topology is None:
            if self.kind == "hub":
                return 0
            if self.kind == "leaf":
                return int(delta)
            return int(resolve_rng(self.seed).integers(0, delta + 1))
        radii = topology.delivery_radii()
        if self.kind == "hub":
            value = int(radii.min())
        elif self.kind == "leaf":
            value = int(radii.max())
        else:
            node = int(resolve_rng(self.seed).integers(0, topology.n_nodes))
            value = int(radii[node])
        return min(value, int(delta))

    def payload(self) -> Dict[str, object]:
        return {"kind": self.kind, "seed": self.seed}


# ----------------------------------------------------------------------
# Partition / eclipse scenarios
# ----------------------------------------------------------------------
def partition_windows(
    schedule: DynamicsSchedule, rounds: int
) -> List[Tuple[int, int]]:
    """The ``[start, end)`` cut windows a schedule imposes on a run.

    This is the window view the two-component scenario scan consumes: only
    full-network :class:`PartitionEvent` cuts (``nodes=None``) qualify — a
    node-set cut needs a topology to say which miners landed on which side,
    which the scan's honest/minority split tensor already encodes.  Windows
    starting at or beyond ``rounds`` are dropped, ends are clipped to
    ``rounds`` (a window still open when the run stops simply never heals),
    empty windows vanish, and overlapping or back-to-back windows merge —
    healing and re-cutting in the same round never reconverges anyone.
    """
    if rounds < 0:
        raise SimulationError(f"rounds must be non-negative, got {rounds!r}")
    raw: List[Tuple[int, int]] = []
    for event in schedule.events:
        if not isinstance(event, PartitionEvent):
            continue
        if event.nodes is not None:
            raise SimulationError(
                "partition_windows covers full-network cuts only; a node-set "
                "partition needs a topology (use the TimeVaryingDelayModel "
                "path)"
            )
        if event.duration is None:
            raise SimulationError(
                "a forever partition (duration=None) has no heal round"
            )
        start = min(event.round, rounds)
        end = min(event.round + event.duration, rounds)
        if end > start:
            raw.append((start, end))
    raw.sort()
    merged: List[Tuple[int, int]] = []
    for start, end in raw:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass(frozen=True)
class PartitionScenario(Scenario):
    """A withholding attack whose adversary also schedules a network cut.

    The adversary cuts the honest gossip graph over
    ``[partition_start, partition_start + partition_duration)`` (the full
    eclipse when no topology is supplied) and mines privately inside the
    window; honest blocks mined there cannot converge until the heal, so
    the private fork races an effectively stalled public chain.  Built on
    the ``private_chain`` state machine: ``target_depth=1`` releases as
    soon as the fork leads (the eclipse flavour — orphaning the in-flight
    honest work), larger targets wait for a post-heal honest suffix to
    displace (the T-consistency violation of Lemma 1).

    When a :class:`~repro.simulation.scenarios.ScenarioSimulation` is given
    such a scenario without an explicit ``delay_model``, it builds the
    matching :class:`TimeVaryingDelayModel` automatically — the cut and
    the attack always fire together.

    ``cut_fraction`` switches from the full eclipse to a *partial* cut: the
    network splits into a majority and a minority component, each honest
    success landing in the minority with that probability, and the engine
    prices the two chain races with the two-component scan (per-component
    public heights and merge-on-heal reconciliation) instead of a delay
    model.  ``kind="equivocation"`` (which requires a cut_fraction) shows
    conflicting private chains to the two components.
    """

    partition_start: int = 1_000
    partition_duration: int = 300
    cut_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self,
            "partition_start",
            _coerce_round(self.partition_start, "partition_start"),
        )
        object.__setattr__(
            self,
            "partition_duration",
            _coerce_round(self.partition_duration, "partition_duration"),
        )
        if self.kind == "publish":
            raise SimulationError(
                "a partition scenario withholds blocks; use kind "
                "'private_chain', 'selfish_mining' or 'equivocation'"
            )
        if self.cut_fraction is not None:
            fraction = float(self.cut_fraction)
            if not (0.0 < fraction < 1.0) or math.isnan(fraction):
                raise SimulationError(
                    "cut_fraction must lie strictly in (0, 1) (the minority "
                    f"component's honest share), got {self.cut_fraction!r}"
                )
            object.__setattr__(self, "cut_fraction", fraction)
        elif self.kind == "equivocation":
            raise SimulationError(
                "equivocation needs two network components; set cut_fraction"
            )

    def dynamics_schedule(self) -> DynamicsSchedule:
        """The cut this scenario's adversary imposes."""
        return DynamicsSchedule(
            [PartitionEvent(self.partition_start, self.partition_duration)]
        )

    def partition_windows(self, rounds: int) -> List[Tuple[int, int]]:
        """The clipped, merged ``[start, end)`` cut windows for a run."""
        return partition_windows(self.dynamics_schedule(), rounds)

    def build_delay_model(
        self, topology: Optional[PeerGraphTopology] = None
    ) -> TimeVaryingDelayModel:
        """The delay model realizing the scheduled cut (full eclipse by default)."""
        if self.cut_fraction is not None:
            raise SimulationError(
                "a partial-cut scenario is priced by the two-component scan, "
                "not a delay model; cut_fraction and build_delay_model are "
                "mutually exclusive"
            )
        return TimeVaryingDelayModel(self.dynamics_schedule(), topology=topology)

    def payload(self) -> Dict[str, object]:
        payload = super().payload()
        payload["partition_start"] = self.partition_start
        payload["partition_duration"] = self.partition_duration
        # Only partial cuts carry the key, so every pre-existing scenario's
        # payload — and with it every cache key and seed stream — is
        # byte-identical to previous releases.
        if self.cut_fraction is not None:
            payload["cut_fraction"] = self.cut_fraction
        return payload


register_scenario(
    PartitionScenario(
        name="eclipse",
        kind="private_chain",
        target_depth=1,
        give_up_deficit=None,
        partition_start=1_000,
        partition_duration=200,
    )
)
register_scenario(
    PartitionScenario(
        name="partition_attack",
        kind="private_chain",
        target_depth=6,
        give_up_deficit=None,
        partition_start=1_000,
        partition_duration=300,
    )
)
register_scenario(
    PartitionScenario(
        name="equivocation",
        kind="equivocation",
        target_depth=6,
        give_up_deficit=None,
        partition_start=1_000,
        partition_duration=300,
        cut_fraction=0.5,
    )
)
