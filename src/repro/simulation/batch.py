"""Vectorized batch Monte Carlo engine: many independent trials at once.

The legacy :class:`~repro.simulation.protocol.NakamotoSimulation` executes one
trial at a time with Python loops over rounds and per-miner oracle queries —
faithful to the model of Section III, but far too slow for the many-trial
validation sweeps behind Figure 1, Remark 1 and the Lemma 1 concentration
events.  This module executes ``T`` independent trials *simultaneously* with
array operations:

* **oracle draws** — per-round honest/adversarial success counts for the
  whole batch are drawn in one shot, either as ``(trials, rounds)`` binomial
  tensors (the default; exactly the per-round distribution of Eq. 41) or as
  an explicit ``(trials, rounds, miners)`` Bernoulli tensor reduced over the
  miner axis (identical in distribution, useful for auditing the binomial
  shortcut);
* **convergence-opportunity detection** — the pattern ``N^Δ H_1 N^Δ`` of
  Eq. (42) is located for every trial at once with cumulative-sum window
  tests, matching the streaming
  :class:`~repro.simulation.events.ConvergenceOpportunityDetector` and the
  offline :func:`~repro.core.concat_chain.count_convergence_opportunities`
  exactly;
* **adversarial accounting** — per-trial adversarial block totals, Lemma 1
  margins ``C - A``, and the worst *windowed* deficit
  ``max_{s<=t} (A(s,t) - C(s,t))`` (the quantity whose positivity over every
  window is what Lemma 1 rules out, computed as a running-maximum drawdown).

Every tensor operation dispatches through the active
:class:`~repro.backend.ArrayBackend` (see :mod:`repro.backend`): the NumPy
reference backend reproduces the historical engine bit for bit, and
``use_backend`` / ``REPRO_BACKEND`` swap in an accelerator without touching
this module.  Randomness is always drawn host-side through the caller's
:class:`numpy.random.Generator` and bridged to the device, dtypes follow the
active :class:`~repro.backend.DtypePolicy`, and a
:class:`~repro.backend.Workspace` (optional, threaded in by
:class:`~repro.simulation.runner.ExperimentRunner`) reuses the hot kernels'
scratch tensors across repeated (trials, rounds) runs.  The workspace path
runs an out-of-place-free variant of the window kernels — slice views plus
``out=`` stores into preallocated buffers — that is value-identical to the
reference expressions (pinned by the equivalence tests) and benchmarked at
≥ 1.5x in ``benchmarks/bench_backend.py``.

The engine deliberately works at the level of per-round aggregate counts —
the same abstraction the paper's analysis lives at.  Full block-tree dynamics
(network delays, withholding releases, Definition 1 snapshots) remain the
business of the legacy simulator, which stays as the reference
implementation; the seed-equivalence tests drive both engines from one
pre-drawn trace via :class:`~repro.simulation.oracle.ScriptedMiningOracle`
and require identical per-round counts and convergence tallies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..backend import (
    ArrayBackend,
    Workspace,
    get_backend,
    get_dtype_policy,
    resolve_chunk_cells,
)
from ..core.concat_chain import convergence_opportunity_mask
from ..errors import SimulationError
from ..observability import METRICS as _METRICS, TRACE as _TRACE
from ..params import ProtocolParameters
from .rng import SeedLike, resolve_rng
from .topology import (
    DelayModel,
    MiningPowerProfile,
    convergence_opportunity_mask_with_delays,
    resolve_delay_model,
)

__all__ = [
    "DRAW_MODES",
    "draw_mining_traces",
    "convergence_opportunity_mask",
    "count_convergence_opportunities_batch",
    "worst_window_deficits",
    "proportion_confidence_interval",
    "BatchResult",
    "BatchSimulation",
]

#: Supported ways of drawing the per-round success counts.
DRAW_MODES = ("binomial", "bernoulli")



def draw_mining_traces(
    params: ProtocolParameters,
    trials: int,
    rounds: int,
    rng: SeedLike = None,
    draw_mode: str = "binomial",
    power: Optional[MiningPowerProfile] = None,
    backend: Optional[ArrayBackend] = None,
    policy=None,
):
    """Draw ``(trials, rounds)`` honest and adversarial success-count tensors.

    The honest tensor is drawn first, then the adversarial tensor, each in a
    single vectorized call — this fixed order is the batch engine's draw
    protocol, so a seed fully determines both tensors.  Draws happen on the
    host generator and are bridged to the active backend, so the bit stream
    is backend-independent.

    ``draw_mode="binomial"`` samples the per-round counts directly as
    ``Binomial(miners, p)`` (Eq. 41).  ``draw_mode="bernoulli"`` materialises
    the underlying ``(trials, rounds, miners)`` per-query Bernoulli tensor
    and reduces over the miner axis — the same distribution, kept for
    auditing, and chunked over trials so memory stays bounded.

    A heterogeneous :class:`~repro.simulation.topology.MiningPowerProfile`
    (validated against ``params``) replaces both paths with per-miner
    Bernoulli draws at each miner's own ``p_i`` — the Poisson-binomial
    per-round law — honest side first, same chunking.
    """
    if trials < 1:
        raise SimulationError(f"trials must be positive, got {trials!r}")
    if rounds < 1:
        raise SimulationError(f"rounds must be positive, got {rounds!r}")
    if draw_mode not in DRAW_MODES:
        raise SimulationError(
            f"draw_mode must be one of {DRAW_MODES}, got {draw_mode!r}"
        )
    xp = get_backend(backend)
    policy = get_dtype_policy(policy)
    policy.check_rounds(rounds)
    index_dtype = policy.index_dtype(xp)
    generator = resolve_rng(rng)
    honest_miners = max(int(round(params.honest_count)), 1)
    adversary_miners = int(round(params.adversary_count))

    if power is not None:
        power.validate_against(params)
        honest = _bernoulli_counts(
            xp, index_dtype, generator, trials, rounds, power.honest_miners,
            power.honest_p,
        )
        adversary = _bernoulli_counts(
            xp, index_dtype, generator, trials, rounds, power.adversary_miners,
            power.adversary_p,
        )
        return honest, adversary

    if draw_mode == "binomial":
        honest = xp.binomial(generator, honest_miners, params.p, (trials, rounds))
        if adversary_miners > 0:
            adversary = xp.binomial(
                generator, adversary_miners, params.p, (trials, rounds)
            )
        else:
            adversary = xp.zeros((trials, rounds), dtype=index_dtype)
        return (
            xp.asarray(honest, dtype=index_dtype),
            xp.asarray(adversary, dtype=index_dtype),
        )

    honest = _bernoulli_counts(
        xp, index_dtype, generator, trials, rounds, honest_miners, params.p
    )
    adversary = _bernoulli_counts(
        xp, index_dtype, generator, trials, rounds, adversary_miners, params.p
    )
    return honest, adversary


def _bernoulli_counts(
    xp: ArrayBackend,
    index_dtype,
    generator: np.random.Generator,
    trials: int,
    rounds: int,
    miners: int,
    hardness,
):
    """Sum a ``(trials, rounds, miners)`` Bernoulli tensor over the miner axis.

    ``hardness`` is a scalar ``p`` (the identical-miner model) or a
    ``(miners,)`` vector of per-miner ``p_i`` (the Poisson-binomial draw of
    a heterogeneous power profile) — the comparison broadcasts either way.
    """
    if miners <= 0:
        return xp.zeros((trials, rounds), dtype=index_dtype)
    counts = xp.empty((trials, rounds), dtype=index_dtype)
    threshold = xp.asarray(hardness)
    # The chunk size is an execution knob only: ``rng.random`` consumes the
    # uniform stream contiguously, so any chunking yields identical counts.
    chunk = max(int(resolve_chunk_cells() // max(rounds * miners, 1)), 1)
    for start in range(0, trials, chunk):
        stop = min(start + chunk, trials)
        draws = xp.random(generator, (stop - start, rounds, miners)) < threshold
        counts[start:stop] = draws.sum(axis=2, dtype=index_dtype)
    return counts


def count_convergence_opportunities_batch(honest_counts, delta: int):
    """Per-trial convergence-opportunity counts for a ``(trials, rounds)`` tensor."""
    xp = get_backend()
    index_dtype = get_dtype_policy().index_dtype(xp)
    mask = convergence_opportunity_mask(xp.to_host(honest_counts), delta)
    return xp.from_host(mask).sum(axis=1, dtype=index_dtype)


def _opportunity_mask_ws(
    workspace: Workspace, xp: ArrayBackend, counts, delta: int, mask_dtype, index_dtype
):
    """Workspace variant of :func:`convergence_opportunity_mask`.

    Value-identical to the reference (the window centres ``delta ..
    rounds-delta-1`` are contiguous, so the reference's fancy-indexed
    gathers become slice views), with every intermediate stored into a
    preallocated buffer.  The returned mask lives in the workspace — callers
    reduce or copy it before the next kernel invocation reuses the tag.
    """
    trials, rounds = counts.shape
    mask = workspace.zeros("mask.out", (trials, rounds), mask_dtype)
    if rounds < 2 * delta + 1:
        return mask
    width = rounds - 2 * delta
    flags = workspace.empty("mask.flags", (trials, rounds), mask_dtype)
    xp.equal(counts, 0, out=flags)
    cumulative = workspace.empty("mask.cumulative", (trials, rounds + 1), index_dtype)
    cumulative[:, 0] = 0
    xp.cumsum(flags, axis=1, dtype=index_dtype, out=cumulative[:, 1:])
    hits = mask[:, 2 * delta :]
    window = workspace.empty("mask.window", (trials, width), index_dtype)
    # Empty-window sum over the delta rounds before each centre ...
    xp.subtract(
        cumulative[:, delta : rounds - delta], cumulative[:, :width], out=window
    )
    xp.equal(window, delta, out=hits)
    # ... and over the delta rounds after it.
    xp.subtract(
        cumulative[:, 2 * delta + 1 :],
        cumulative[:, delta + 1 : rounds - delta + 1],
        out=window,
    )
    side = flags[:, :width]
    xp.equal(window, delta, out=side)
    xp.logical_and(hits, side, out=hits)
    xp.equal(counts[:, delta : rounds - delta], 1, out=side)
    xp.logical_and(hits, side, out=hits)
    return mask


def worst_window_deficits(
    opportunity_mask,
    adversary_counts,
    workspace: Optional[Workspace] = None,
    backend: Optional[ArrayBackend] = None,
    policy=None,
):
    """Per-trial worst windowed deficit ``max_{s<=t} (A(s,t) - C(s,t))``.

    Lemma 1's consistency argument needs every window of rounds to contain
    more convergence opportunities than adversarial blocks; the worst window
    is found per trial as the maximum drawdown of the running difference
    ``D_r = C(1,r) - A(1,r)``.  A value of ``d`` means some window existed in
    which adversarial blocks outnumbered convergence opportunities by ``d`` —
    the analytical analogue of a depth-``d`` consistency threat.

    With a ``workspace`` the drawdown scan writes into preallocated buffers
    (same values, no per-call allocation); without one it takes the
    reference per-call-allocation path.
    """
    xp = get_backend(backend)
    index_dtype = get_dtype_policy(policy).index_dtype(xp)
    mask = xp.asarray(opportunity_mask)
    adversary = xp.asarray(adversary_counts, dtype=index_dtype)
    if mask.shape != adversary.shape:
        raise SimulationError(
            f"mask shape {mask.shape} does not match adversary shape {adversary.shape}"
        )
    if workspace is not None:
        return _worst_window_deficits_ws(workspace, xp, mask, adversary, index_dtype)
    difference = xp.cumsum(xp.asarray(mask, dtype=index_dtype) - adversary, axis=1)
    # Prepend the empty-window baseline 0 so windows starting at round 1 count.
    baseline = xp.zeros((difference.shape[0], 1), dtype=index_dtype)
    padded = xp.concatenate([baseline, difference], axis=1)
    running_max = xp.maximum_accumulate(padded, axis=1)
    return (running_max - padded).max(axis=1)


def _worst_window_deficits_ws(
    workspace: Workspace, xp: ArrayBackend, mask, adversary, index_dtype
):
    """Workspace variant of the drawdown scan (value-identical, no allocation
    beyond the returned per-trial reduction)."""
    trials, rounds = mask.shape
    padded = workspace.empty("deficit.padded", (trials, rounds + 1), index_dtype)
    padded[:, 0] = 0
    difference = workspace.empty("deficit.difference", (trials, rounds), index_dtype)
    xp.subtract(mask, adversary, out=difference)
    xp.cumsum(difference, axis=1, dtype=index_dtype, out=padded[:, 1:])
    running = workspace.empty("deficit.running", (trials, rounds + 1), index_dtype)
    xp.maximum_accumulate(padded, axis=1, out=running)
    xp.subtract(running, padded, out=running)
    return running.max(axis=1)


def _confidence_interval(values: np.ndarray) -> Tuple[float, float]:
    """Normal-approximation 95% confidence interval for the mean of ``values``.

    Host-side statistics helper for *unbounded* means (rates, depths, fork
    sizes): accumulates in the active dtype policy's ``stat`` dtype (float64
    under ``wide`` — the historical behaviour; float32 under ``compact``,
    within the documented :data:`~repro.backend.dtypes.COMPACT_STAT_RTOL`).

    A single observation carries no variance information, so the interval is
    ``(nan, nan)`` rather than the zero-width ``(mean, mean)`` — a one-trial
    run must never masquerade as a certain estimate (the tables render the
    NaN bounds as ``n/a``).  Proportion-valued statistics over 0-1 outcomes
    (violation/success probabilities) must go through
    :func:`proportion_confidence_interval` instead: the normal approximation
    collapses to a zero-width interval at 0 or ``trials`` successes, which is
    exactly where honest tail bounds matter most.
    """
    values = np.asarray(values, dtype=np.dtype(get_dtype_policy().stat))
    if values.size < 2:
        return (math.nan, math.nan)
    mean = float(values.mean())
    half_width = 1.96 * float(values.std(ddof=1)) / math.sqrt(values.size)
    return (mean - half_width, mean + half_width)


def proportion_confidence_interval(
    successes: int, trials: int
) -> Tuple[float, float]:
    """Wilson score 95% confidence interval for a Bernoulli proportion.

    The right tool for probability estimates over 0-1 outcomes: unlike the
    normal (Wald) approximation, the interval never collapses to zero width
    at the boundaries — a run with *zero* observed successes still reports
    the honest upper bound ``z^2 / (n + z^2)`` (≈ ``3.84 / n`` for large
    ``n``), and a run where every trial succeeded still admits failure
    probability mass.  Both endpoints are clipped to ``[0, 1]`` by
    construction.  A zero-trial input returns ``(nan, nan)``.
    """
    trials = int(trials)
    successes = int(successes)
    if trials < 1:
        return (math.nan, math.nan)
    if not 0 <= successes <= trials:
        raise SimulationError(
            f"successes must lie in [0, {trials}], got {successes!r}"
        )
    z = 1.96
    estimate = successes / trials
    denominator = 1.0 + z * z / trials
    centre = (estimate + z * z / (2.0 * trials)) / denominator
    half_width = (z / denominator) * math.sqrt(
        estimate * (1.0 - estimate) / trials + z * z / (4.0 * trials * trials)
    )
    return (max(centre - half_width, 0.0), min(centre + half_width, 1.0))


@dataclass
class BatchResult:
    """Per-trial outcomes plus aggregate statistics for one batch run.

    All per-trial arrays have shape ``(trials,)`` and live on the host.
    ``honest_counts`` and ``adversary_counts`` (shape ``(trials, rounds)``)
    are retained only when the run was made with ``keep_traces=True``.
    """

    params: ProtocolParameters
    trials: int
    rounds: int
    draw_mode: str
    convergence_opportunities: np.ndarray
    honest_blocks: np.ndarray
    adversary_blocks: np.ndarray
    worst_deficits: np.ndarray
    honest_counts: Optional[np.ndarray] = field(default=None, repr=False)
    adversary_counts: Optional[np.ndarray] = field(default=None, repr=False)
    #: Name of the delay model the convergence mask was computed under;
    #: "fixed_delta" is the paper's worst-case model (the historical default).
    delay_model: str = "fixed_delta"

    # ------------------------------------------------------------------
    # Per-trial derived quantities
    # ------------------------------------------------------------------
    @property
    def lemma1_margins(self) -> np.ndarray:
        """Per-trial Lemma 1 margins ``C - A`` over the whole run."""
        return self.convergence_opportunities - self.adversary_blocks

    @property
    def empirical_convergence_rates(self) -> np.ndarray:
        """Per-trial convergence opportunities per round (compare to Eq. 44)."""
        return self.convergence_opportunities / self.rounds

    @property
    def empirical_adversary_rates(self) -> np.ndarray:
        """Per-trial adversarial blocks per round (compare to ``p nu n``)."""
        return self.adversary_blocks / self.rounds

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def mean_convergence_rate(self) -> float:
        """Batch mean of the per-trial convergence-opportunity rates."""
        return float(self.empirical_convergence_rates.mean())

    @property
    def convergence_rate_ci95(self) -> Tuple[float, float]:
        """95% confidence interval for the convergence-opportunity rate."""
        return _confidence_interval(self.empirical_convergence_rates)

    @property
    def mean_adversary_rate(self) -> float:
        """Batch mean of the per-trial adversarial block rates."""
        return float(self.empirical_adversary_rates.mean())

    @property
    def adversary_rate_ci95(self) -> Tuple[float, float]:
        """95% confidence interval for the adversarial block rate."""
        return _confidence_interval(self.empirical_adversary_rates)

    @property
    def lemma1_fraction(self) -> float:
        """Fraction of trials in which the Lemma 1 event ``C > A`` held."""
        return float((self.lemma1_margins > 0).mean())

    @property
    def theoretical_convergence_rate(self) -> float:
        """``alpha_bar^(2Δ) alpha1`` (Eq. 44)."""
        return self.params.convergence_opportunity_probability

    @property
    def theoretical_adversary_rate(self) -> float:
        """``p nu n`` (Eq. 27)."""
        return self.params.beta

    def deficit_exceeds(self, depth: int) -> np.ndarray:
        """Per-trial flags: some window had ``A - C >= depth`` (depth-``depth`` threat)."""
        if depth < 0:
            raise SimulationError("depth must be non-negative")
        return self.worst_deficits >= depth

    def violation_probability(self, depth: int) -> float:
        """Fraction of trials whose worst windowed deficit reached ``depth``."""
        return float(self.deficit_exceeds(depth).mean())

    def violation_ci95(self, depth: int) -> Tuple[float, float]:
        """Wilson score 95% interval for the depth-``depth`` violation probability.

        Proportion-valued, so it goes through
        :func:`proportion_confidence_interval`: a batch with zero observed
        violations reports a strictly positive upper bound instead of the
        false certainty of a zero-width normal interval.
        """
        flags = self.deficit_exceeds(depth)
        return proportion_confidence_interval(int(flags.sum()), flags.size)

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of the headline numbers (for tables)."""
        convergence_ci = self.convergence_rate_ci95
        adversary_ci = self.adversary_rate_ci95
        return {
            "trials": self.trials,
            "rounds": self.rounds,
            "c": self.params.c,
            "nu": self.params.nu,
            "delta": self.params.delta,
            "mean_convergence_rate": self.mean_convergence_rate,
            "convergence_rate_ci95_low": convergence_ci[0],
            "convergence_rate_ci95_high": convergence_ci[1],
            "theoretical_convergence_rate": self.theoretical_convergence_rate,
            "mean_adversary_rate": self.mean_adversary_rate,
            "adversary_rate_ci95_low": adversary_ci[0],
            "adversary_rate_ci95_high": adversary_ci[1],
            "theoretical_adversary_rate": self.theoretical_adversary_rate,
            "lemma1_fraction": self.lemma1_fraction,
            "mean_worst_deficit": float(self.worst_deficits.mean()),
            "max_worst_deficit": int(self.worst_deficits.max()),
            "delay_model": self.delay_model,
        }


class BatchSimulation:
    """Backend-vectorized batch Monte Carlo execution of the mining model.

    Parameters
    ----------
    params:
        Protocol parameters (``p``, ``n``, ``Δ``, ``nu``).
    rng:
        Source of randomness (generator, integer seed, seed sequence or
        ``None`` for the default seeded generator); the single generator
        drives every draw, so one seed determines the whole batch.
    draw_mode:
        ``"binomial"`` (default) or ``"bernoulli"`` — see
        :func:`draw_mining_traces`.
    delay_model:
        ``None`` or ``"fixed_delta"`` (equivalent — the paper's constant-Δ
        worst case, bit-identical to the historical engine), a registry
        name, or a :class:`~repro.simulation.topology.DelayModel` instance.
        Non-trivial models draw per-block delivery offsets *after* the two
        mining tensors (extending the draw protocol) and feed them to the
        generalized convergence-opportunity detector
        (:func:`~repro.simulation.topology.convergence_opportunity_mask_with_delays`).
    power:
        Optional heterogeneous
        :class:`~repro.simulation.topology.MiningPowerProfile`; validated
        against ``params`` before any draw.
    workspace:
        Optional :class:`~repro.backend.Workspace` of preallocated scratch
        buffers; pass one workspace across repeated runs (as
        :class:`~repro.simulation.runner.ExperimentRunner` does) and the
        window kernels stop allocating.  Results never alias the workspace.

    The engine binds the ambient backend and dtype policy at construction
    (``use_backend`` / ``use_dtype_policy`` contexts, or the
    ``REPRO_BACKEND`` / ``REPRO_DTYPE_POLICY`` environment variables); all
    results are converted back to host NumPy at the engine boundary.

    Examples
    --------
    >>> from repro.params import parameters_from_c
    >>> params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
    >>> result = BatchSimulation(params, rng=0).run(trials=32, rounds=2_000)
    >>> result.convergence_opportunities.shape
    (32,)
    >>> bool(result.lemma1_fraction > 0.5)
    True
    """

    def __init__(
        self,
        params: ProtocolParameters,
        rng: SeedLike = None,
        draw_mode: str = "binomial",
        delay_model: Union[None, str, DelayModel] = None,
        power: Optional[MiningPowerProfile] = None,
        workspace: Optional[Workspace] = None,
    ):
        if draw_mode not in DRAW_MODES:
            raise SimulationError(
                f"draw_mode must be one of {DRAW_MODES}, got {draw_mode!r}"
            )
        self.params = params
        self.rng = resolve_rng(rng)
        self.draw_mode = draw_mode
        self.delay_model = resolve_delay_model(delay_model)
        self.power = power
        if self.power is not None:
            self.power.validate_against(params)
        self.backend = get_backend()
        self.policy = get_dtype_policy()
        self.workspace = workspace
        if workspace is not None:
            workspace.bind(self.backend)

    @property
    def _delay_model_name(self) -> str:
        return "fixed_delta" if self.delay_model is None else self.delay_model.name

    def run(
        self, trials: int, rounds: int, keep_traces: bool = False
    ) -> BatchResult:
        """Draw fresh traces for ``trials`` independent runs and analyse them.

        The draw order is honest tensor, adversarial tensor, then (only for
        a non-trivial delay model) the delay tensor — so with
        ``delay_model=None`` or ``"fixed_delta"`` a seed produces exactly
        the pre-topology stream.
        """
        with _TRACE.span(
            "batch.run",
            trials=int(trials),
            rounds=int(rounds),
            draw_mode=self.draw_mode,
            delay_model=self._delay_model_name,
        ):
            with _TRACE.span("batch.draw"):
                honest, adversary = draw_mining_traces(
                    self.params,
                    trials,
                    rounds,
                    self.rng,
                    self.draw_mode,
                    power=self.power,
                    backend=self.backend,
                    policy=self.policy,
                )
                delays = None
                max_delay = None
                if self.delay_model is not None and not self.delay_model.trivial:
                    delays = self.delay_model.draw_delays(
                        trials, rounds, self.params.delta, self.rng
                    )
                    max_delay = self.delay_model.delay_cap(
                        self.params.delta, rounds
                    )
            return self.run_traces(
                honest,
                adversary,
                keep_traces=keep_traces,
                delays=delays,
                max_delay=max_delay,
            )

    def run_traces(
        self,
        honest_counts,
        adversary_counts,
        keep_traces: bool = False,
        delays=None,
        max_delay: Optional[int] = None,
    ) -> BatchResult:
        """Analyse pre-drawn ``(trials, rounds)`` success-count tensors.

        This is the deterministic half of the engine: given the same tensors
        it always produces the same result, which is what the equivalence
        tests against the legacy simulator exercise.  ``delays`` carries
        pre-drawn per-block delivery offsets (``None`` means the constant-Δ
        worst case); ``max_delay`` (default Δ) widens the validation cap for
        time-varying models whose adversarial windows exceed Δ.
        """
        xp = self.backend
        index_dtype = self.policy.index_dtype(xp)
        honest = xp.asarray(honest_counts, dtype=index_dtype)
        adversary = xp.asarray(adversary_counts, dtype=index_dtype)
        if honest.ndim != 2:
            raise SimulationError(
                f"honest_counts must have shape (trials, rounds), got {honest.shape}"
            )
        if honest.shape != adversary.shape:
            raise SimulationError(
                f"honest shape {honest.shape} does not match adversary shape "
                f"{adversary.shape}"
            )
        trials, rounds = honest.shape
        if rounds < 1:
            raise SimulationError("rounds must be positive")
        self.policy.check_rounds(rounds)
        _METRICS.increment("engine.batch.trials", trials)
        _METRICS.increment("engine.batch.rounds", trials * rounds)
        with _TRACE.span("batch.mask", trials=trials, rounds=rounds):
            if delays is None:
                if self.workspace is not None:
                    mask = _opportunity_mask_ws(
                        self.workspace,
                        xp,
                        honest,
                        self.params.delta,
                        self.policy.mask_dtype(xp),
                        index_dtype,
                    )
                else:
                    mask = xp.from_host(
                        convergence_opportunity_mask(
                            xp.to_host(honest), self.params.delta
                        )
                    )
            else:
                mask = convergence_opportunity_mask_with_delays(
                    honest,
                    delays,
                    self.params.delta,
                    max_delay=max_delay,
                    backend=xp,
                    policy=self.policy,
                )
        with _TRACE.span("batch.deficits", trials=trials, rounds=rounds):
            deficits = worst_window_deficits(
                mask,
                adversary,
                workspace=self.workspace,
                backend=xp,
                policy=self.policy,
            )
        return BatchResult(
            params=self.params,
            trials=trials,
            rounds=rounds,
            draw_mode=self.draw_mode,
            convergence_opportunities=xp.to_host(
                mask.sum(axis=1, dtype=index_dtype)
            ),
            honest_blocks=xp.to_host(honest.sum(axis=1, dtype=index_dtype)),
            adversary_blocks=xp.to_host(adversary.sum(axis=1, dtype=index_dtype)),
            worst_deficits=xp.to_host(deficits),
            honest_counts=xp.to_host(honest) if keep_traces else None,
            adversary_counts=xp.to_host(adversary) if keep_traces else None,
            delay_model=self._delay_model_name,
        )
