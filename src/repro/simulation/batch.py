"""Vectorized batch Monte Carlo engine: many independent trials at once.

The legacy :class:`~repro.simulation.protocol.NakamotoSimulation` executes one
trial at a time with Python loops over rounds and per-miner oracle queries —
faithful to the model of Section III, but far too slow for the many-trial
validation sweeps behind Figure 1, Remark 1 and the Lemma 1 concentration
events.  This module executes ``T`` independent trials *simultaneously* with
NumPy array operations:

* **oracle draws** — per-round honest/adversarial success counts for the
  whole batch are drawn in one shot, either as ``(trials, rounds)`` binomial
  tensors (the default; exactly the per-round distribution of Eq. 41) or as
  an explicit ``(trials, rounds, miners)`` Bernoulli tensor reduced over the
  miner axis (identical in distribution, useful for auditing the binomial
  shortcut);
* **convergence-opportunity detection** — the pattern ``N^Δ H_1 N^Δ`` of
  Eq. (42) is located for every trial at once with cumulative-sum window
  tests, matching the streaming
  :class:`~repro.simulation.events.ConvergenceOpportunityDetector` and the
  offline :func:`~repro.core.concat_chain.count_convergence_opportunities`
  exactly;
* **adversarial accounting** — per-trial adversarial block totals, Lemma 1
  margins ``C - A``, and the worst *windowed* deficit
  ``max_{s<=t} (A(s,t) - C(s,t))`` (the quantity whose positivity over every
  window is what Lemma 1 rules out, computed as a running-maximum drawdown).

The engine deliberately works at the level of per-round aggregate counts —
the same abstraction the paper's analysis lives at.  Full block-tree dynamics
(network delays, withholding releases, Definition 1 snapshots) remain the
business of the legacy simulator, which stays as the reference
implementation; the seed-equivalence tests drive both engines from one
pre-drawn trace via :class:`~repro.simulation.oracle.ScriptedMiningOracle`
and require identical per-round counts and convergence tallies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..core.concat_chain import convergence_opportunity_mask
from ..errors import SimulationError
from ..params import ProtocolParameters
from .rng import SeedLike, resolve_rng
from .topology import (
    DelayModel,
    MiningPowerProfile,
    convergence_opportunity_mask_with_delays,
    resolve_delay_model,
)

__all__ = [
    "DRAW_MODES",
    "draw_mining_traces",
    "convergence_opportunity_mask",
    "count_convergence_opportunities_batch",
    "worst_window_deficits",
    "BatchResult",
    "BatchSimulation",
]

#: Supported ways of drawing the per-round success counts.
DRAW_MODES = ("binomial", "bernoulli")

#: Trials per chunk when materialising the (trials, rounds, miners) tensor.
_BERNOULLI_CHUNK_CELLS = 32_000_000


def draw_mining_traces(
    params: ProtocolParameters,
    trials: int,
    rounds: int,
    rng: SeedLike = None,
    draw_mode: str = "binomial",
    power: Optional[MiningPowerProfile] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``(trials, rounds)`` honest and adversarial success-count tensors.

    The honest tensor is drawn first, then the adversarial tensor, each in a
    single vectorized call — this fixed order is the batch engine's draw
    protocol, so a seed fully determines both tensors.

    ``draw_mode="binomial"`` samples the per-round counts directly as
    ``Binomial(miners, p)`` (Eq. 41).  ``draw_mode="bernoulli"`` materialises
    the underlying ``(trials, rounds, miners)`` per-query Bernoulli tensor
    and reduces over the miner axis — the same distribution, kept for
    auditing, and chunked over trials so memory stays bounded.

    A heterogeneous :class:`~repro.simulation.topology.MiningPowerProfile`
    (validated against ``params``) replaces both paths with per-miner
    Bernoulli draws at each miner's own ``p_i`` — the Poisson-binomial
    per-round law — honest side first, same chunking.
    """
    if trials < 1:
        raise SimulationError(f"trials must be positive, got {trials!r}")
    if rounds < 1:
        raise SimulationError(f"rounds must be positive, got {rounds!r}")
    if draw_mode not in DRAW_MODES:
        raise SimulationError(
            f"draw_mode must be one of {DRAW_MODES}, got {draw_mode!r}"
        )
    generator = resolve_rng(rng)
    honest_miners = max(int(round(params.honest_count)), 1)
    adversary_miners = int(round(params.adversary_count))

    if power is not None:
        power.validate_against(params)
        honest = _bernoulli_counts(
            generator, trials, rounds, power.honest_miners, power.honest_p
        )
        adversary = _bernoulli_counts(
            generator, trials, rounds, power.adversary_miners, power.adversary_p
        )
        return honest, adversary

    if draw_mode == "binomial":
        honest = generator.binomial(honest_miners, params.p, size=(trials, rounds))
        if adversary_miners > 0:
            adversary = generator.binomial(
                adversary_miners, params.p, size=(trials, rounds)
            )
        else:
            adversary = np.zeros((trials, rounds), dtype=np.int64)
        return honest.astype(np.int64), adversary.astype(np.int64)

    honest = _bernoulli_counts(generator, trials, rounds, honest_miners, params.p)
    adversary = _bernoulli_counts(generator, trials, rounds, adversary_miners, params.p)
    return honest, adversary


def _bernoulli_counts(
    generator: np.random.Generator,
    trials: int,
    rounds: int,
    miners: int,
    hardness,
) -> np.ndarray:
    """Sum a ``(trials, rounds, miners)`` Bernoulli tensor over the miner axis.

    ``hardness`` is a scalar ``p`` (the identical-miner model) or a
    ``(miners,)`` vector of per-miner ``p_i`` (the Poisson-binomial draw of
    a heterogeneous power profile) — the comparison broadcasts either way.
    """
    if miners <= 0:
        return np.zeros((trials, rounds), dtype=np.int64)
    counts = np.empty((trials, rounds), dtype=np.int64)
    chunk = max(int(_BERNOULLI_CHUNK_CELLS // max(rounds * miners, 1)), 1)
    for start in range(0, trials, chunk):
        stop = min(start + chunk, trials)
        draws = generator.random((stop - start, rounds, miners)) < hardness
        counts[start:stop] = draws.sum(axis=2, dtype=np.int64)
    return counts


def count_convergence_opportunities_batch(
    honest_counts: np.ndarray, delta: int
) -> np.ndarray:
    """Per-trial convergence-opportunity counts for a ``(trials, rounds)`` tensor."""
    return convergence_opportunity_mask(honest_counts, delta).sum(axis=1)


def worst_window_deficits(
    opportunity_mask: np.ndarray, adversary_counts: np.ndarray
) -> np.ndarray:
    """Per-trial worst windowed deficit ``max_{s<=t} (A(s,t) - C(s,t))``.

    Lemma 1's consistency argument needs every window of rounds to contain
    more convergence opportunities than adversarial blocks; the worst window
    is found per trial as the maximum drawdown of the running difference
    ``D_r = C(1,r) - A(1,r)``.  A value of ``d`` means some window existed in
    which adversarial blocks outnumbered convergence opportunities by ``d`` —
    the analytical analogue of a depth-``d`` consistency threat.
    """
    mask = np.asarray(opportunity_mask)
    adversary = np.asarray(adversary_counts, dtype=np.int64)
    if mask.shape != adversary.shape:
        raise SimulationError(
            f"mask shape {mask.shape} does not match adversary shape {adversary.shape}"
        )
    difference = np.cumsum(mask.astype(np.int64) - adversary, axis=1)
    # Prepend the empty-window baseline 0 so windows starting at round 1 count.
    baseline = np.zeros((difference.shape[0], 1), dtype=np.int64)
    padded = np.concatenate([baseline, difference], axis=1)
    running_max = np.maximum.accumulate(padded, axis=1)
    return (running_max - padded).max(axis=1)


def _confidence_interval(values: np.ndarray) -> Tuple[float, float]:
    """Normal-approximation 95% confidence interval for the mean of ``values``."""
    values = np.asarray(values, dtype=np.float64)
    mean = float(values.mean())
    if values.size < 2:
        return (mean, mean)
    half_width = 1.96 * float(values.std(ddof=1)) / math.sqrt(values.size)
    return (mean - half_width, mean + half_width)


@dataclass
class BatchResult:
    """Per-trial outcomes plus aggregate statistics for one batch run.

    All per-trial arrays have shape ``(trials,)``.  ``honest_counts`` and
    ``adversary_counts`` (shape ``(trials, rounds)``) are retained only when
    the run was made with ``keep_traces=True``.
    """

    params: ProtocolParameters
    trials: int
    rounds: int
    draw_mode: str
    convergence_opportunities: np.ndarray
    honest_blocks: np.ndarray
    adversary_blocks: np.ndarray
    worst_deficits: np.ndarray
    honest_counts: Optional[np.ndarray] = field(default=None, repr=False)
    adversary_counts: Optional[np.ndarray] = field(default=None, repr=False)
    #: Name of the delay model the convergence mask was computed under;
    #: "fixed_delta" is the paper's worst-case model (the historical default).
    delay_model: str = "fixed_delta"

    # ------------------------------------------------------------------
    # Per-trial derived quantities
    # ------------------------------------------------------------------
    @property
    def lemma1_margins(self) -> np.ndarray:
        """Per-trial Lemma 1 margins ``C - A`` over the whole run."""
        return self.convergence_opportunities - self.adversary_blocks

    @property
    def empirical_convergence_rates(self) -> np.ndarray:
        """Per-trial convergence opportunities per round (compare to Eq. 44)."""
        return self.convergence_opportunities / self.rounds

    @property
    def empirical_adversary_rates(self) -> np.ndarray:
        """Per-trial adversarial blocks per round (compare to ``p nu n``)."""
        return self.adversary_blocks / self.rounds

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def mean_convergence_rate(self) -> float:
        """Batch mean of the per-trial convergence-opportunity rates."""
        return float(self.empirical_convergence_rates.mean())

    @property
    def convergence_rate_ci95(self) -> Tuple[float, float]:
        """95% confidence interval for the convergence-opportunity rate."""
        return _confidence_interval(self.empirical_convergence_rates)

    @property
    def mean_adversary_rate(self) -> float:
        """Batch mean of the per-trial adversarial block rates."""
        return float(self.empirical_adversary_rates.mean())

    @property
    def adversary_rate_ci95(self) -> Tuple[float, float]:
        """95% confidence interval for the adversarial block rate."""
        return _confidence_interval(self.empirical_adversary_rates)

    @property
    def lemma1_fraction(self) -> float:
        """Fraction of trials in which the Lemma 1 event ``C > A`` held."""
        return float((self.lemma1_margins > 0).mean())

    @property
    def theoretical_convergence_rate(self) -> float:
        """``alpha_bar^(2Δ) alpha1`` (Eq. 44)."""
        return self.params.convergence_opportunity_probability

    @property
    def theoretical_adversary_rate(self) -> float:
        """``p nu n`` (Eq. 27)."""
        return self.params.beta

    def deficit_exceeds(self, depth: int) -> np.ndarray:
        """Per-trial flags: some window had ``A - C >= depth`` (depth-``depth`` threat)."""
        if depth < 0:
            raise SimulationError("depth must be non-negative")
        return self.worst_deficits >= depth

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of the headline numbers (for tables)."""
        convergence_ci = self.convergence_rate_ci95
        adversary_ci = self.adversary_rate_ci95
        return {
            "trials": self.trials,
            "rounds": self.rounds,
            "c": self.params.c,
            "nu": self.params.nu,
            "delta": self.params.delta,
            "mean_convergence_rate": self.mean_convergence_rate,
            "convergence_rate_ci95_low": convergence_ci[0],
            "convergence_rate_ci95_high": convergence_ci[1],
            "theoretical_convergence_rate": self.theoretical_convergence_rate,
            "mean_adversary_rate": self.mean_adversary_rate,
            "adversary_rate_ci95_low": adversary_ci[0],
            "adversary_rate_ci95_high": adversary_ci[1],
            "theoretical_adversary_rate": self.theoretical_adversary_rate,
            "lemma1_fraction": self.lemma1_fraction,
            "mean_worst_deficit": float(self.worst_deficits.mean()),
            "max_worst_deficit": int(self.worst_deficits.max()),
            "delay_model": self.delay_model,
        }


class BatchSimulation:
    """NumPy-vectorized batch Monte Carlo execution of the mining model.

    Parameters
    ----------
    params:
        Protocol parameters (``p``, ``n``, ``Δ``, ``nu``).
    rng:
        Source of randomness (generator, integer seed, seed sequence or
        ``None`` for the default seeded generator); the single generator
        drives every draw, so one seed determines the whole batch.
    draw_mode:
        ``"binomial"`` (default) or ``"bernoulli"`` — see
        :func:`draw_mining_traces`.
    delay_model:
        ``None`` or ``"fixed_delta"`` (equivalent — the paper's constant-Δ
        worst case, bit-identical to the historical engine), a registry
        name, or a :class:`~repro.simulation.topology.DelayModel` instance.
        Non-trivial models draw per-block delivery offsets *after* the two
        mining tensors (extending the draw protocol) and feed them to the
        generalized convergence-opportunity detector
        (:func:`~repro.simulation.topology.convergence_opportunity_mask_with_delays`).
    power:
        Optional heterogeneous
        :class:`~repro.simulation.topology.MiningPowerProfile`; validated
        against ``params`` before any draw.

    Examples
    --------
    >>> from repro.params import parameters_from_c
    >>> params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
    >>> result = BatchSimulation(params, rng=0).run(trials=32, rounds=2_000)
    >>> result.convergence_opportunities.shape
    (32,)
    >>> bool(result.lemma1_fraction > 0.5)
    True
    """

    def __init__(
        self,
        params: ProtocolParameters,
        rng: SeedLike = None,
        draw_mode: str = "binomial",
        delay_model: Union[None, str, DelayModel] = None,
        power: Optional[MiningPowerProfile] = None,
    ):
        if draw_mode not in DRAW_MODES:
            raise SimulationError(
                f"draw_mode must be one of {DRAW_MODES}, got {draw_mode!r}"
            )
        self.params = params
        self.rng = resolve_rng(rng)
        self.draw_mode = draw_mode
        self.delay_model = resolve_delay_model(delay_model)
        self.power = power
        if self.power is not None:
            self.power.validate_against(params)

    @property
    def _delay_model_name(self) -> str:
        return "fixed_delta" if self.delay_model is None else self.delay_model.name

    def run(
        self, trials: int, rounds: int, keep_traces: bool = False
    ) -> BatchResult:
        """Draw fresh traces for ``trials`` independent runs and analyse them.

        The draw order is honest tensor, adversarial tensor, then (only for
        a non-trivial delay model) the delay tensor — so with
        ``delay_model=None`` or ``"fixed_delta"`` a seed produces exactly
        the pre-topology stream.
        """
        honest, adversary = draw_mining_traces(
            self.params, trials, rounds, self.rng, self.draw_mode, power=self.power
        )
        delays = None
        max_delay = None
        if self.delay_model is not None and not self.delay_model.trivial:
            delays = self.delay_model.draw_delays(
                trials, rounds, self.params.delta, self.rng
            )
            max_delay = self.delay_model.delay_cap(self.params.delta, rounds)
        return self.run_traces(
            honest,
            adversary,
            keep_traces=keep_traces,
            delays=delays,
            max_delay=max_delay,
        )

    def run_traces(
        self,
        honest_counts: np.ndarray,
        adversary_counts: np.ndarray,
        keep_traces: bool = False,
        delays: Optional[np.ndarray] = None,
        max_delay: Optional[int] = None,
    ) -> BatchResult:
        """Analyse pre-drawn ``(trials, rounds)`` success-count tensors.

        This is the deterministic half of the engine: given the same tensors
        it always produces the same result, which is what the equivalence
        tests against the legacy simulator exercise.  ``delays`` carries
        pre-drawn per-block delivery offsets (``None`` means the constant-Δ
        worst case); ``max_delay`` (default Δ) widens the validation cap for
        time-varying models whose adversarial windows exceed Δ.
        """
        honest = np.asarray(honest_counts, dtype=np.int64)
        adversary = np.asarray(adversary_counts, dtype=np.int64)
        if honest.ndim != 2:
            raise SimulationError(
                f"honest_counts must have shape (trials, rounds), got {honest.shape}"
            )
        if honest.shape != adversary.shape:
            raise SimulationError(
                f"honest shape {honest.shape} does not match adversary shape "
                f"{adversary.shape}"
            )
        trials, rounds = honest.shape
        if rounds < 1:
            raise SimulationError("rounds must be positive")
        if delays is None:
            mask = convergence_opportunity_mask(honest, self.params.delta)
        else:
            mask = convergence_opportunity_mask_with_delays(
                honest, delays, self.params.delta, max_delay=max_delay
            )
        return BatchResult(
            params=self.params,
            trials=trials,
            rounds=rounds,
            draw_mode=self.draw_mode,
            convergence_opportunities=mask.sum(axis=1),
            honest_blocks=honest.sum(axis=1),
            adversary_blocks=adversary.sum(axis=1),
            worst_deficits=worst_window_deficits(mask, adversary),
            honest_counts=honest if keep_traces else None,
            adversary_counts=adversary if keep_traces else None,
            delay_model=self._delay_model_name,
        )
