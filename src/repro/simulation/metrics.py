"""Chain metrics: consistency, chain growth and chain quality.

The three properties reviewed in Section II of the paper are measured here
over the chain snapshots recorded by the simulator:

* **consistency** (Definition 1): for any two observation rounds ``r < s``,
  all but the last ``T`` blocks of the chain at ``r`` must be a prefix of the
  chain at ``s``.  We report the smallest ``T`` that would have been violated,
  i.e. the maximum depth by which an already-buried block was later displaced.
* **chain growth**: blocks added per round.
* **chain quality**: fraction of honest blocks in the chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import SimulationError
from .block import Block
from .blocktree import BlockTree, common_prefix_length

__all__ = [
    "ConsistencyReport",
    "consistency_violation_depth",
    "consistency_report",
    "chain_growth_rate",
    "chain_quality",
]


@dataclass(frozen=True)
class ConsistencyReport:
    """Summary of the consistency check over a sequence of chain snapshots.

    Attributes
    ----------
    max_violation_depth:
        The largest number of trailing blocks of an *earlier* snapshot that
        failed to be a prefix of a *later* snapshot.  Consistency with
        parameter ``T`` holds for the run iff ``max_violation_depth <= T``.
    violating_pair:
        The (earlier_index, later_index) snapshot pair achieving the maximum,
        or ``None`` when the depth is 0.
    snapshots_compared:
        Number of ordered snapshot pairs examined.
    """

    max_violation_depth: int
    violating_pair: tuple
    snapshots_compared: int

    def is_consistent(self, confirmations: int) -> bool:
        """Whether T-consistency holds for ``T = confirmations``."""
        return self.max_violation_depth <= confirmations


def consistency_violation_depth(
    earlier: Sequence[int], later: Sequence[int]
) -> int:
    """Depth by which ``earlier`` is *not* a prefix of ``later``.

    Returns 0 when ``earlier`` is a full prefix of ``later``; otherwise the
    number of trailing blocks of ``earlier`` below the divergence point —
    exactly the smallest ``T`` for which the Definition 1 predicate would
    still hold for this pair.
    """
    prefix = common_prefix_length(earlier, later)
    return max(len(earlier) - prefix, 0)


def consistency_report(snapshots: Sequence[Sequence[int]]) -> ConsistencyReport:
    """Check Definition 1 over every ordered pair of chain snapshots.

    ``snapshots`` is a sequence of root-first chains (block-id lists) taken at
    increasing rounds; the report gives the worst violation depth across all
    ordered pairs (including the future-self-consistency pairs ``r < s`` for
    the same observer, which is how the simulator records them).
    """
    if len(snapshots) < 2:
        return ConsistencyReport(0, (), 0)
    worst = 0
    worst_pair: tuple = ()
    compared = 0
    for earlier_index in range(len(snapshots) - 1):
        earlier = snapshots[earlier_index]
        for later_index in range(earlier_index + 1, len(snapshots)):
            depth = consistency_violation_depth(earlier, snapshots[later_index])
            compared += 1
            if depth > worst:
                worst = depth
                worst_pair = (earlier_index, later_index)
    return ConsistencyReport(worst, worst_pair, compared)


def chain_growth_rate(chain: Sequence[int], rounds: int) -> float:
    """Blocks per round added to the chain (genesis excluded)."""
    if rounds <= 0:
        raise SimulationError("rounds must be positive")
    return max(len(chain) - 1, 0) / rounds


def chain_quality(tree: BlockTree, chain: Sequence[int]) -> float:
    """Fraction of honest blocks among the non-genesis blocks of ``chain``."""
    blocks = [tree.get(block_id) for block_id in chain if block_id != 0]
    if not blocks:
        return 1.0
    honest = sum(1 for block in blocks if block.honest)
    return honest / len(blocks)
