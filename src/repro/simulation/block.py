"""Blocks: the abstract records of the paper's model (Section III).

A block is "an abstract record containing a message".  For the purposes of the
consistency analysis only the chain structure matters, so a block here carries
its identity, its parent, its height, the round it was mined in, the id of the
miner that produced it and whether that miner was honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationError

__all__ = ["Block", "GENESIS_ID", "genesis_block"]

GENESIS_ID = 0
"""Block id reserved for the genesis block."""


@dataclass(frozen=True, order=True)
class Block:
    """One block of the chain.

    Attributes
    ----------
    block_id:
        Globally unique integer identifier (0 is reserved for genesis).
    parent_id:
        Identifier of the parent block (``None`` only for genesis).
    height:
        Distance from genesis (genesis has height 0).
    round_mined:
        The round in which the proof of work succeeded.
    miner_id:
        Identifier of the miner that produced the block (-1 for genesis).
    honest:
        Whether the producing miner was honest at the time of mining.
    """

    block_id: int
    parent_id: Optional[int]
    height: int
    round_mined: int
    miner_id: int
    honest: bool

    def __post_init__(self) -> None:
        if self.block_id < 0:
            raise SimulationError(f"block_id must be non-negative, got {self.block_id!r}")
        if self.height < 0:
            raise SimulationError(f"height must be non-negative, got {self.height!r}")
        if self.block_id == GENESIS_ID:
            if self.parent_id is not None or self.height != 0:
                raise SimulationError("genesis must have no parent and height 0")
        else:
            if self.parent_id is None:
                raise SimulationError("non-genesis blocks must have a parent")
            if self.parent_id == self.block_id:
                raise SimulationError("a block cannot be its own parent")
            if self.height < 1:
                raise SimulationError("non-genesis blocks must have height >= 1")

    @property
    def is_genesis(self) -> bool:
        """Whether this is the genesis block."""
        return self.block_id == GENESIS_ID


def genesis_block() -> Block:
    """The canonical genesis block shared by every simulation."""
    return Block(
        block_id=GENESIS_ID,
        parent_id=None,
        height=0,
        round_mined=0,
        miner_id=-1,
        honest=True,
    )
