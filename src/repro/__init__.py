"""repro — a reproduction of "An Analysis of Blockchain Consistency in
Asynchronous Networks: Deriving a Neat Bound" (Jun Zhao, ICDCS 2020).

The library has five layers:

* :mod:`repro.params` — the protocol parameterisation of Table I;
* :mod:`repro.backend` — the array-API backend layer every engine's tensor
  math dispatches through (NumPy reference backend, optional accelerator
  backend, dtype policies, preallocated workspaces);
* :mod:`repro.core` — the paper's contribution: the neat bound
  ``2 mu / ln(mu/nu)``, Theorems 1-3, the two Markov chains C_F and C_F||P,
  the concentration bounds, and the PSS/Kiffer baselines;
* :mod:`repro.markov` and :mod:`repro.simulation` — the substrates: generic
  finite Markov chains, and a round-based Nakamoto protocol simulator in the
  Δ-delay asynchronous model;
* :mod:`repro.analysis` — the experiment drivers that regenerate Figure 1,
  Remark 1 and the validation studies.

Quickstart
----------
>>> from repro import parameters_from_c, neat_bound, nu_max_neat_bound
>>> params = parameters_from_c(c=5.0, n=100_000, delta=10, nu=0.2)
>>> params.c > neat_bound(params.nu)       # consistency per the paper
True
>>> 0.0 < nu_max_neat_bound(2.0) < 0.5     # the magenta curve of Figure 1
True

Batch Monte Carlo
-----------------
Validation sweeps need many independent protocol executions; running them
one at a time through :class:`~repro.simulation.NakamotoSimulation` is the
slowest path in the library.  :class:`~repro.simulation.BatchSimulation`
executes ``T`` trials *simultaneously* as NumPy array operations — oracle
successes drawn as whole ``(trials, rounds)`` tensors, convergence
opportunities located with vectorized window tests, Lemma 1 margins and
worst windowed ``A - C`` deficits aggregated per trial — typically
10-100x faster than the per-trial loop at equal trial counts.

>>> from repro import BatchSimulation
>>> small = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
>>> batch = BatchSimulation(small, rng=0).run(trials=32, rounds=2_000)
>>> batch.convergence_opportunities.shape
(32,)
>>> bool(batch.lemma1_fraction > 0.5)
True

:class:`~repro.simulation.ExperimentRunner` layers deterministic
per-point seeding (:class:`numpy.random.SeedSequence` spawning), optional
``multiprocessing`` sharding across parameter points, and an on-disk
result cache keyed by parameters+seed on top of the batch engine; see
``examples/batch_validation.py``.  The legacy single-trial simulator
remains the reference implementation — the batch engine is tested to
produce identical per-round counts and convergence tallies when both are
driven from the same pre-drawn trace.

Adversarial scenario registry
-----------------------------
Attacks are described declaratively by :class:`~repro.simulation.Scenario`
objects held in a registry: ``passive`` and ``max_delay`` (publish
immediately, delaying honest blocks by 0 and Δ rounds respectively),
``private_chain`` (the PSS Remark 8.5 withholding attack, parameterised by
``target_depth`` and ``give_up_deficit``), ``selfish_mining``
(Eyal-Sirer adapted to the round model), and — via
:mod:`repro.simulation.dynamics` — ``eclipse`` / ``partition_attack``
(withholding plus a scheduled network cut) and ``equivocation`` (the
adversary shows *conflicting* private chains to the two sides of a partial
cut; see the network-dynamics section).  Look scenarios up with
:func:`~repro.simulation.get_scenario`, enumerate them with
:func:`~repro.simulation.list_scenarios`, and add custom variants with
:func:`~repro.simulation.register_scenario`.  Each scenario runs on two
engines that are bit-comparable under scripted replay: the vectorized
:class:`~repro.simulation.ScenarioSimulation` (all trials at once, attack
state as ``(trials,)`` tensors) and, as the reference implementation, the
legacy :class:`~repro.simulation.NakamotoSimulation` with the scenario's
:meth:`~repro.simulation.Scenario.build_adversary` strategy.

>>> from repro import ScenarioSimulation
>>> from repro.simulation import list_scenarios
>>> sorted(list_scenarios())
['eclipse', 'equivocation', 'max_delay', 'partition_attack', 'passive', 'private_chain', 'selfish_mining']
>>> attack = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)
>>> result = ScenarioSimulation(attack, "private_chain", rng=0).run(8, 2_000)
>>> bool(result.attack_success_probability >= 0.0)
True

``repro.analysis.attack_sweeps`` turns the per-point results into
attack-success-probability and fork-depth surfaces over
(scenario, nu, Δ) grids with confidence intervals; see
``examples/attack_surface_sweep.py``.

Network topologies
------------------
The paper prices every message at the single worst-case delay Δ and gives
every miner identical power; :mod:`repro.simulation.topology` relaxes both
while keeping fixed-Δ as an exactly-reproducible special case.  *Delay
models* (a registry: ``fixed_delta``, ``uniform``, ``truncated_geometric``,
``peer_graph``) draw per-block all-honest-delivery offsets as
``(trials, rounds)`` tensors capped at Δ and plug into both engines via
``delay_model=`` — ``fixed_delta`` is bit-identical to the pre-topology
engines and consumes no entropy.  A
:class:`~repro.simulation.PeerGraphTopology` (ring, random-regular,
Erdős–Rényi, star generators with per-edge integer latencies) derives
those offsets from vectorized gossip-front propagation, and its
:meth:`~repro.simulation.PeerGraphTopology.effective_delta` maps the
topology back into the analytical world, so ``core.bounds`` predictions
can be compared against simulation under realistic propagation.
Heterogeneous mining power enters through
:class:`~repro.simulation.MiningPowerProfile` (per-miner ``p_i`` with the
aggregate rates validated against the parameter point), accepted by
``MiningOracle``/``ScriptedMiningOracle`` and both engines via ``power=``.

>>> from repro import PeerGraphTopology
>>> topology = PeerGraphTopology.random_regular(32, 4, rng=0)
>>> 1 <= topology.effective_delta() <= topology.diameter
True

``ExperimentRunner.run_topology_point`` / ``run_topology_grid`` add
topology-aware cache keys (graph wiring and power profiles are part of the
key, as is the package version — a warm cache is never silently reused
across upgrades), and ``repro.analysis.topology_sweeps`` produces
Δ-tightness curves — empirical convergence-opportunity rates under gossip
versus the fixed-Δ prediction, per graph degree and latency spread, with
95% CIs; see ``examples/topology_sweep.py``.

Network dynamics
----------------
:mod:`repro.simulation.dynamics` makes the network a function of the round
index.  A :class:`~repro.simulation.DynamicsSchedule` lists round-indexed
events — peer churn (:class:`~repro.simulation.ChurnEvent`), latency drift
(:class:`~repro.simulation.LatencyDriftEvent`) and bounded-window
partitions or full eclipses (:class:`~repro.simulation.PartitionEvent`) —
and compiles into per-round delivery tensors consumed by both engines
through :class:`~repro.simulation.TimeVaryingDelayModel`.  An empty
schedule is bit-identical to the static subsystem; a partition window is
the adversary *breaking* the Δ guarantee for a bounded span, so obstructed
blocks deliver later than Δ and convergence opportunities vanish inside
the window while the adversary keeps mining.  ``eclipse`` and
``partition_attack`` scenarios (the adversary schedules the cut and mines
privately inside it) join the scenario registry, and
:class:`~repro.simulation.AdversaryPlacement` positions corrupted miners
on the gossip graph — their releases then propagate through gossip
(``hub`` / ``leaf`` / ``random``) instead of landing instantaneously.

A :class:`~repro.simulation.PartitionScenario` with ``cut_fraction`` set
makes the cut *partial*: the honest network splits into a majority and a
minority component (each honest success landing in the minority with that
probability) and the engine switches to a **two-component scan** — per-
component public heights, fork points and pending-release rings, a common
prefix frozen at the cut round, and merge-on-heal reconciliation where the
higher chain wins and the losing suffix counts as displaced depth.  The
``equivocation`` scenario rides on it: the adversary maintains one private
chain per component, feeds each round's successes to the weaker race, and
releases conflicting chains to the two sides.  Both are pinned bit-exactly
to the pure-Python :func:`~repro.simulation.reference_partition_scan`;
aggregate-path runs (no windows) stay bit-identical to the legacy engine,
and routing a *node-set* partition through the aggregate single-height
scan now raises (``allow_partial_partitions=True`` downgrades it to a
warning) instead of silently mispricing the race.

>>> from repro.simulation import DynamicsSchedule, PartitionEvent, TimeVaryingDelayModel
>>> model = TimeVaryingDelayModel(DynamicsSchedule([PartitionEvent(1_000, 200)]))
>>> eclipse = BatchSimulation(small, rng=0, delay_model=model).run(32, 2_000)
>>> int(eclipse.worst_deficits.max()) >= int(batch.worst_deficits.max())
True

``ExperimentRunner.run_dynamics_point`` / ``run_dynamics_grid`` give every
(schedule, topology, scenario, placement) combination its own cache slot
and seed stream, and ``repro.analysis.partition_sweeps`` turns the results
into violation-depth-versus-partition-duration curves (deterministically
monotone under the shared-trace design) and churn-rate tightness tables;
see ``examples/partition_attack_sweep.py``.

Rare-event tails
----------------
The security margins the paper cares about live at violation probabilities
of ``1e-9`` and below — far past what plain Monte Carlo can see.
:class:`~repro.simulation.RareEventSimulation` estimates
``P[worst windowed A - C deficit >= depth]`` with two variance-reduction
techniques layered on the batch engine: *exponential tilting* of the
Bernoulli/Binomial mining draws (adversary up, honest down; exact stopped
per-trial likelihood ratios, a cross-entropy pilot stage that centres the
deficit on the violation threshold, and bit-identity with plain MC at zero
tilt) and *multilevel splitting* on the worst windowed deficit (trajectories
cloned at their first level crossing, suffixes redrawn).  Plain-MC
estimates carry Wilson score intervals, so a zero-violation run reports an
honest strictly positive upper bound rather than false certainty.

>>> from repro.simulation import RareEventSimulation
>>> tail = RareEventSimulation(small, depth=8, rng=0).run_tilted(512, 600)
>>> bool(0.0 < tail.probability < 1.0)
True

``ExperimentRunner.run_rare_event_point`` / ``run_rare_event_grid`` give
every estimator spec (depth, method, tilt, pilot knobs) its own cache slot
and seed stream, and ``repro.analysis.tail_sweeps`` compares the estimated
tails against the Lundberg-exponent predictions under the corrected
Eq. (44) and Kiffer convergence rates — plus a plain-MC agreement table in
the 1e-4-to-1e-6 overlap region; see ``examples/rare_event_tail.py``.

Streaming
---------
Dense batch results hold per-trial arrays, so a grid point's memory grows
linearly with ``trials`` — at ``1e8`` trials the trace tensors alone pass
100 GB.  :class:`~repro.simulation.StreamingBatchSimulation` (and
:class:`~repro.simulation.StreamingScenarioSimulation` for attack
scenarios) drive the *same dense kernels* in bounded chunks: trials are
carved into fixed seed blocks
(:data:`~repro.simulation.SEED_BLOCK_CELLS` cells each, every block drawn
from its own spawned :class:`numpy.random.SeedSequence`), each execution
chunk groups whole consecutive blocks inside the
``REPRO_CHUNK_CELLS``/``chunk_cells`` budget, and per-block slices fold
into online accumulators — exact integer tallies, Chan/Kahan-merged float
moments, a bounded worst-deficit histogram.  The streamed summary has the
same keys as the dense ``summary()`` (integer-backed entries exact, float
moments within :data:`~repro.simulation.STREAM_STAT_RTOL`), and because
draws are per-block — never per-chunk — it is **bit-identical for every
chunk size** and for serial versus sharded execution.
``ExperimentRunner.run_streaming_point`` / ``run_streaming_grid`` cache
the summary-only results by statistical identity (``chunk_cells`` is
execution policy and deliberately excluded from the key), and
``benchmarks/bench_streaming.py`` gates the streamed peak footprint at
<= 10% of the projected dense peak without giving up throughput.

>>> from repro import StreamingBatchSimulation
>>> streamed = StreamingBatchSimulation(small, seed=0, chunk_cells=1_000)
>>> tiny = StreamingBatchSimulation(small, seed=0, chunk_cells=1)
>>> streamed.run(64, 400, depths=(1,)).summary() == tiny.run(
...     64, 400, depths=(1,)
... ).summary()
True

Array backends
--------------
Every tensor operation in the batch, scenario, topology and dynamics
engines dispatches through :mod:`repro.backend` — a registry of
:class:`~repro.backend.ArrayBackend` dispatch tables selected ambiently by
:func:`~repro.backend.use_backend` contexts or the ``REPRO_BACKEND``
environment variable, with no engine-code changes.  The NumPy reference
backend *is* NumPy (every op is the library function itself), so the
default configuration is bit-identical to the pre-backend engines — pinned
by pre-refactor golden digests; the optional ``array_api`` backend
activates CuPy or torch through ``array_api_compat`` when installed and
degrades to a clear :class:`~repro.errors.BackendUnavailableError`
otherwise.  Randomness is always drawn host-side through the caller's
:class:`numpy.random.Generator` and bridged to the device, so one seed
produces one bit stream on every backend, and results return to host NumPy
at the engine boundary (the analysis layer and the runner's caches stay
backend-agnostic; default cache keys are unchanged).

Two companion knobs tune the engines' memory behaviour: a
:class:`~repro.backend.DtypePolicy` (``wide`` — int64/bool/float64, the
bit-exact default — or ``compact`` — int32/uint8/float32 with exact
integers and float statistics inside a documented tolerance, selected via
``use_dtype_policy`` / ``REPRO_DTYPE_POLICY``), and a
:class:`~repro.backend.Workspace` of preallocated scratch buffers that the
hot kernels reuse across repeated (trials, rounds) runs —
``ExperimentRunner`` threads one workspace through every grid point, and
``benchmarks/bench_backend.py`` gates the pooled path at >= 1.5x over
per-call allocation.  See ``examples/backend_speed.py``.

>>> from repro import Workspace, use_backend
>>> with use_backend("numpy"):
...     pooled = BatchSimulation(small, rng=0, workspace=Workspace()).run(32, 2_000)
>>> bool((pooled.convergence_opportunities == batch.convergence_opportunities).all())
True

Observability
-------------
:mod:`repro.observability` instruments every engine and the
:class:`~repro.simulation.ExperimentRunner` with zero overhead when off —
the default state is pinned bit-identical to the uninstrumented engines by
golden-digest tests, and hot-path kernels never touch instrumentation
inside their per-round loops (enforced by the AST hygiene guard).  Four
pieces:

* **tracing** — ``REPRO_TRACE=1`` (process-wide) or a
  :func:`~repro.observability.use_tracer` context records nestable wall-
  time spans (runner call → engine stage → kernel), each stamped with the
  ambient backend and dtype policy;
* **metrics** — counters and gauges (trials/rounds simulated, cache
  hits/misses and version skips per runner method, workspace reuse versus
  fresh allocation, host↔device transfers, rare-event pilot iterations and
  ESS) behind :func:`~repro.observability.use_metrics`, exported as one
  JSON snapshot;
* **run manifests** — ``ExperimentRunner(run_log=...)`` or
  ``REPRO_RUN_LOG=path`` appends one validated JSON line per ``run_*``
  call (schema ``repro.run_manifest``: params, seed, cache slot and
  hit/miss state, duration, backend, package version, result digest),
  giving every cached ``.npz`` artefact a provenance trail;
* **perf trajectory** — the gated benchmarks append schema-versioned
  records (``repro.bench_trajectory``) to the committed
  ``BENCH_trajectory.json`` under ``REPRO_BENCH_RECORD=1``, and
  :func:`repro.analysis.perf_trajectory_table` renders the history.

The layer also reaches across process and run boundaries:

* **cross-process capture** — sharded grids ship each pool worker's span
  trees, metrics snapshot and buffered manifest records back with the
  result; the parent grafts the spans under its grid-level span
  (shard-stamped), folds the counters into the ambient registry and
  appends the manifests to its run log, so a ``processes=N`` grid reports
  exactly like a sequential one (:mod:`repro.observability.distributed`);
* **live grid progress** — ``REPRO_PROGRESS=stderr`` (a self-overwriting
  status line) or ``REPRO_PROGRESS=path.jsonl`` (machine-readable events)
  reports per-point completions with duration, running cache-hit ratio and
  ETA; off by default (:mod:`repro.observability.progress`);
* **resource accounting** — peak RSS and the workspace's high-water byte
  footprint are sampled at every run boundary and stamped into the
  manifest's ``extra["resources"]`` (:mod:`repro.observability.resources`);
* **perf-regression sentinel** —
  :func:`repro.analysis.detect_regressions` (also ``python -m
  repro.analysis.perf_report``) compares each benchmark's newest
  trajectory record against the median of its prior same-mode history and
  fails CI on a beyond-tolerance slowdown.

>>> from repro.observability import use_metrics, use_tracer
>>> with use_tracer() as tracer, use_metrics() as metrics:
...     _ = BatchSimulation(small, rng=0).run(8, 500)
>>> [root.name for root in tracer.roots]
['batch.run']
>>> metrics.counter("engine.batch.trials")
8
"""

from .core import (
    ConcatChain,
    ConsistencyAnalyzer,
    ConsistencyVerdict,
    MiningProbabilities,
    SuffixChain,
    evaluate_bounds,
    neat_bound,
    nu_max_neat_bound,
    nu_max_pss_consistency,
    nu_min_pss_attack,
    theorem1_condition,
    theorem2_condition,
)
from .backend import (
    DtypePolicy,
    Workspace,
    backend_specs,
    get_backend,
    get_dtype_policy,
    list_backends,
    use_backend,
    use_dtype_policy,
)
from .errors import (
    AnalysisError,
    BackendError,
    BackendUnavailableError,
    MarkovChainError,
    ParameterError,
    ReproError,
    SimulationError,
)
from ._version import __version__
from .params import ProtocolParameters, parameters_for_target_alpha, parameters_from_c
from .simulation import (
    AdversaryPlacement,
    BatchResult,
    BatchSimulation,
    DelayModel,
    DynamicsSchedule,
    ExperimentRunner,
    MiningPowerProfile,
    PartitionScenario,
    PeerGraphDelayModel,
    PeerGraphTopology,
    RareEventResult,
    RareEventSimulation,
    Scenario,
    ScenarioResult,
    ScenarioSimulation,
    StreamingBatchResult,
    StreamingBatchSimulation,
    StreamingScenarioResult,
    StreamingScenarioSimulation,
    TimeVaryingDelayModel,
)

__all__ = [
    "__version__",
    "ProtocolParameters",
    "parameters_from_c",
    "parameters_for_target_alpha",
    "MiningProbabilities",
    "neat_bound",
    "nu_max_neat_bound",
    "nu_max_pss_consistency",
    "nu_min_pss_attack",
    "theorem1_condition",
    "theorem2_condition",
    "evaluate_bounds",
    "SuffixChain",
    "ConcatChain",
    "ConsistencyAnalyzer",
    "ConsistencyVerdict",
    "BatchSimulation",
    "BatchResult",
    "ExperimentRunner",
    "Scenario",
    "ScenarioResult",
    "ScenarioSimulation",
    "DelayModel",
    "MiningPowerProfile",
    "PeerGraphDelayModel",
    "PeerGraphTopology",
    "DynamicsSchedule",
    "TimeVaryingDelayModel",
    "AdversaryPlacement",
    "PartitionScenario",
    "RareEventSimulation",
    "RareEventResult",
    "StreamingBatchSimulation",
    "StreamingBatchResult",
    "StreamingScenarioSimulation",
    "StreamingScenarioResult",
    "get_backend",
    "use_backend",
    "list_backends",
    "backend_specs",
    "DtypePolicy",
    "get_dtype_policy",
    "use_dtype_policy",
    "Workspace",
    "ReproError",
    "ParameterError",
    "MarkovChainError",
    "SimulationError",
    "AnalysisError",
    "BackendError",
    "BackendUnavailableError",
]
