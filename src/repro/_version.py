"""Single source of the package version.

Kept in its own module (rather than ``repro/__init__``) so that deep
submodules — notably :mod:`repro.simulation.runner`, which mixes the version
into every on-disk cache key — can import it without touching the package
root mid-initialisation.
"""

__version__ = "1.10.0"
