"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses are raised where the
distinction is useful for programmatic handling (invalid protocol parameters
versus a malformed Markov chain versus a simulation misconfiguration).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "MarkovChainError",
    "SimulationError",
    "AnalysisError",
    "BackendError",
    "BackendUnavailableError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class ParameterError(ReproError, ValueError):
    """Raised when protocol parameters violate the paper's model assumptions.

    The model of Section III of the paper requires, among others,
    ``0 < nu < 1/2 < mu`` (Inequality 2), ``n >= 4`` (Inequality 3),
    ``0 < p < 1`` and ``delta >= 1``.
    """


class MarkovChainError(ReproError, ValueError):
    """Raised for malformed Markov chains (non-stochastic matrices, ...)."""


class SimulationError(ReproError, RuntimeError):
    """Raised when the round-based protocol simulation is misconfigured."""


class AnalysisError(ReproError, RuntimeError):
    """Raised by the analysis harness when an experiment cannot be produced."""


class BackendError(ReproError, RuntimeError):
    """Raised when the array-backend layer is misconfigured (unknown backend
    name, dtype-policy mismatch, workspace bound to a different backend)."""


class ObservabilityError(ReproError, RuntimeError):
    """Raised by :mod:`repro.observability` for malformed instrumentation
    artefacts — a run-manifest or perf-trajectory record that fails schema
    validation, or a run log that cannot be written where asked."""


class BackendUnavailableError(BackendError):
    """Raised when a registered backend cannot run on this machine — its
    optional dependency (``array_api_compat``, CuPy, torch) is not installed.

    Kept distinct from :class:`BackendError` so tests and sweep scripts can
    *skip* gracefully instead of failing: unavailable hardware is an expected
    condition, a misconfigured registry is a bug.
    """
