"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file exists
so that ``python setup.py develop`` (and editable installs on environments
without the ``wheel`` package, as used in the offline CI image) keep working.
"""

from setuptools import setup

setup()
