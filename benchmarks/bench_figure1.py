"""Benchmark / regeneration of Figure 1 (the paper's only figure).

Regenerates the three curves — the paper's neat bound (magenta), the PSS
consistency bound (blue) and the PSS Remark 8.5 attack (red) — over the
paper's c-range [0.1, 100] with n = 1e5 and Delta = 1e13, verifies the
qualitative orderings the paper reads off the figure, and prints the series.
"""

from __future__ import annotations

import pytest

from repro.analysis import figure1_checks, figure1_series, render_table
from repro.analysis.figure1 import default_c_grid


@pytest.mark.benchmark(group="figure1")
def test_figure1_full_series(benchmark):
    """Time the regeneration of the full Figure 1 series (60 c-points)."""
    series = benchmark(figure1_series)
    checks = figure1_checks(series)
    assert checks["ours_above_pss"]
    assert checks["ours_below_attack"]
    assert checks["curves_monotone"]

    rows = series.as_rows()
    printable = rows[:: max(len(rows) // 12, 1)]
    print("\nFigure 1 — maximum tolerable adversarial fraction nu vs c")
    print(render_table(printable))
    print(f"qualitative checks: {checks}")


@pytest.mark.benchmark(group="figure1")
def test_figure1_dense_grid(benchmark):
    """Time a denser grid (500 points), as used for smooth plotting."""
    grid = default_c_grid(points=500)
    series = benchmark(figure1_series, c_values=grid)
    assert len(series.points) == 500


@pytest.mark.benchmark(group="figure1")
def test_figure1_single_point_solvers(benchmark):
    """Time the per-point root-finding behind the magenta curve."""
    from repro.core.bounds import nu_max_neat_bound

    value = benchmark(nu_max_neat_bound, 5.0)
    assert 0.0 < value < 0.5


@pytest.mark.benchmark(group="figure1")
def test_figure1_region_areas(benchmark):
    """Quantify the figure: area of the plane certified by each analysis."""
    from repro.analysis import region_areas, render_table

    areas = benchmark(region_areas, None, 120)
    print("\nSecurity-region areas over c in [0.1, 100] (log-uniform) x nu in (0, 0.5)")
    print(render_table(areas.as_rows()))
    print(
        f"certified by PSS: {areas.certified_by_pss:.3f}, "
        f"certified by the paper's bound: {areas.certified_by_ours:.3f} "
        f"(improvement {areas.improvement_ratio:.2f}x); "
        f"open gap to the attack curve: {areas.open_gap:.3f}"
    )
    assert areas.certified_by_ours > areas.certified_by_pss
