"""Benchmark: the vectorized two-component partition scan vs its reference.

The equivalence tests pin :meth:`ScenarioSimulation._scan_partition` bit for
bit against the pure-Python per-trial :func:`reference_partition_scan`; this
benchmark makes sure the vectorized engine is the one worth running.  Both
engines price the same equivocation attack on the same seeded mining,
adversary and minority-split tensors across a mid-run partial cut, and the
vectorized scan must be **>= 5x** faster than looping the reference over the
trial axis.

Run directly (``python -m pytest benchmarks/bench_equivocation.py``) the
module also refreshes ``BENCH_equivocation.json`` at the repo root when
``REPRO_BENCH_RECORD=1`` — the persisted perf-trajectory entry the roadmap
asks for.

Migration note: ``BENCH_equivocation.json`` predates the unified
``repro.bench_trajectory`` schema.  Its historical entries were lifted into
the committed ``BENCH_trajectory.json`` via
:func:`repro.observability.migrate_legacy_entries` (``timestamp`` and
``machine`` are ``None`` there — the legacy file never recorded them), and
new measurements are appended to *both* files: the legacy file keeps its
original flat shape for existing consumers, the trajectory gets the
schema-versioned record via :func:`conftest.record_trajectory`.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from conftest import bench_scale, record_trajectory
from repro._version import __version__
from repro.params import parameters_from_c
from repro.simulation import (
    PartitionScenario,
    ScenarioSimulation,
    draw_mining_traces,
    reference_partition_scan,
)

#: The scan vectorizes over trials (one Python-level step per round), so the
#: speedup is amortized across the trial axis — quick mode keeps the round
#: count small but the trial count wide enough to clear the gate honestly.
TRIALS = bench_scale(128, 256)
ROUNDS = bench_scale(600, 4_000)
PARAMS = parameters_from_c(c=1.0, n=500, delta=3, nu=0.25)
SEED = 2026
SCENARIO = PartitionScenario(
    name="bench",
    kind="equivocation",
    target_depth=6,
    give_up_deficit=None,
    partition_start=ROUNDS // 4,
    partition_duration=ROUNDS // 2,
    cut_fraction=0.5,
)

#: The issue's gate: the vectorized two-component scan must beat the
#: per-trial pure-Python reference by at least this factor.
SPEEDUP_GATE = 5.0

RECORD_ENV_VAR = "REPRO_BENCH_RECORD"
RECORD_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_equivocation.json"
)


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def _record(payload):
    """Append the measured datapoint to the committed perf trajectory."""
    if os.environ.get(RECORD_ENV_VAR, "") != "1":
        return
    history = []
    if RECORD_PATH.exists():
        history = json.loads(RECORD_PATH.read_text())["entries"]
    history.append(payload)
    RECORD_PATH.write_text(
        json.dumps({"benchmark": "equivocation", "entries": history}, indent=2)
        + "\n"
    )


def test_partition_scan_beats_per_trial_reference():
    """The vectorized scan must price the cut >= 5x faster than the reference."""
    rng = np.random.default_rng(SEED)
    honest, adversary = draw_mining_traces(PARAMS, TRIALS, ROUNDS, rng)
    split = rng.binomial(np.asarray(honest), SCENARIO.cut_fraction)
    simulation = ScenarioSimulation(PARAMS, SCENARIO, rng=SEED)
    windows = SCENARIO.partition_windows(ROUNDS)

    vectorized, vectorized_seconds = _timed(
        lambda: simulation.run_traces(honest, adversary, split_counts=split)
    )

    def run_reference():
        rows = []
        for trial in range(TRIALS):
            rows.append(
                reference_partition_scan(
                    honest[trial],
                    adversary[trial],
                    split[trial],
                    delta=PARAMS.delta,
                    windows=windows,
                    kind=SCENARIO.kind,
                    target_depth=SCENARIO.target_depth,
                    give_up_deficit=SCENARIO.give_up_deficit,
                    release_delay=simulation.release_delay,
                )
            )
        return rows

    reference, reference_seconds = _timed(run_reference)

    # Same numbers before we compare clocks — the speedup must be honest.
    for trial, row in enumerate(reference):
        assert int(vectorized.deepest_forks[trial]) == row["deepest_fork"]
        assert int(vectorized.merge_depths[trial]) == row["merge_depth"]
        assert (
            int(vectorized.final_public_heights[trial])
            == row["final_public_height"]
        )

    speedup = reference_seconds / vectorized_seconds
    print(
        f"\nEquivocation partition scan, {TRIALS} trials x {ROUNDS} rounds "
        f"(cut {windows}): vectorized {vectorized_seconds * 1e3:.0f}ms, "
        f"per-trial reference {reference_seconds * 1e3:.0f}ms "
        f"-> {speedup:.1f}x; mean deepest fork "
        f"{vectorized.mean_deepest_fork:.2f}, mean merge depth "
        f"{float(vectorized.merge_depths.mean()):.2f}"
    )

    assert speedup >= SPEEDUP_GATE, (
        f"vectorized partition scan only {speedup:.1f}x faster than the "
        f"per-trial reference (gate {SPEEDUP_GATE}x)"
    )

    _record(
        {
            "version": __version__,
            "trials": TRIALS,
            "rounds": ROUNDS,
            "seed": SEED,
            "cut_fraction": SCENARIO.cut_fraction,
            "vectorized_seconds": vectorized_seconds,
            "reference_seconds": reference_seconds,
            "speedup": speedup,
            "gate": SPEEDUP_GATE,
        }
    )
    record_trajectory(
        "equivocation",
        {
            "trials": TRIALS,
            "rounds": ROUNDS,
            "seed": SEED,
            "cut_fraction": SCENARIO.cut_fraction,
            "vectorized_seconds": vectorized_seconds,
            "reference_seconds": reference_seconds,
            "speedup": speedup,
            "gate": SPEEDUP_GATE,
        },
    )
