"""Benchmark / regeneration of the chain-growth and chain-quality extension.

The paper analyses consistency only and lists chain growth / chain quality as
future work (Section II).  This benchmark evaluates the standard Δ-delay-model
lower bounds implemented in ``repro.core.chain_properties`` and compares them
against the simulator under the worst-case-delay and selfish-mining
adversaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core.chain_properties import estimate_chain_properties
from repro.params import parameters_from_c
from repro.simulation import (
    MaxDelayAdversary,
    NakamotoSimulation,
    SelfishMiningAdversary,
)

NU_GRID = [0.1, 0.2, 0.3, 0.4]


@pytest.mark.benchmark(group="chain-properties")
def test_analytical_estimates(benchmark):
    """Time the closed-form growth/quality estimates across nu."""

    def sweep():
        rows = []
        for nu in NU_GRID:
            params = parameters_from_c(c=3.0, n=1_000, delta=4, nu=nu)
            estimates = estimate_chain_properties(params)
            rows.append(
                {
                    "nu": nu,
                    "growth lower bound (blocks/round)": estimates.growth_per_round,
                    "quality lower bound": estimates.quality_fraction,
                    "block interval (rounds)": estimates.block_interval_rounds,
                    "consistent (neat bound)": estimates.consistent,
                }
            )
        return rows

    rows = benchmark(sweep)
    print("\nChain growth / quality lower bounds (c = 3, Delta = 4)")
    print(render_table(rows))


@pytest.mark.benchmark(group="chain-properties")
def test_growth_and_quality_against_simulation(benchmark):
    """Measured growth (max-delay adversary) and quality (selfish mining) vs bounds."""
    params = parameters_from_c(c=3.0, n=1_000, delta=4, nu=0.3)
    estimates = estimate_chain_properties(params)

    def run():
        growth_run = NakamotoSimulation(
            params, adversary=MaxDelayAdversary(4), rng=np.random.default_rng(1)
        ).run(8_000)
        quality_run = NakamotoSimulation(
            params, adversary=SelfishMiningAdversary(4), rng=np.random.default_rng(2)
        ).run(8_000)
        return growth_run, quality_run

    growth_run, quality_run = benchmark(run)
    rows = [
        {
            "quantity": "chain growth (blocks/round)",
            "lower bound": estimates.growth_per_round,
            "measured (max-delay adversary)": growth_run.growth_rate,
        },
        {
            "quantity": "chain quality (honest fraction)",
            "lower bound": estimates.quality_fraction,
            "measured (selfish mining)": quality_run.quality,
        },
    ]
    print("\nChain properties: analytical lower bounds vs simulation (nu = 0.3)")
    print(render_table(rows))
    assert growth_run.growth_rate >= estimates.growth_per_round * 0.85
    assert quality_run.quality >= estimates.quality_fraction - 0.05
