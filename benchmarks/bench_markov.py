"""Benchmarks of the Markov-chain machinery behind Theorem 1.

Covers the suffix chain C_F (closed-form vs numerical stationary
distribution, Eqs. 37a-37d), the convergence-opportunity probability of the
chain C_F||P (Eq. 44), and the mixing-time computation feeding the
Chernoff-Hoeffding bound (Inequality 47).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core.concat_chain import ConcatChain
from repro.core.suffix_chain import SuffixChain
from repro.markov import mixing_time, spectral_gap
from repro.params import parameters_from_c

PARAMS = parameters_from_c(c=4.0, n=1_000, delta=6, nu=0.2)


@pytest.mark.benchmark(group="markov")
def test_closed_form_stationary(benchmark):
    """Time the closed-form stationary distribution of C_F (Eqs. 37a-d)."""
    chain = SuffixChain(PARAMS)
    closed = benchmark(chain.closed_form_stationary)
    assert sum(closed.values()) == pytest.approx(1.0)


@pytest.mark.benchmark(group="markov")
def test_numerical_stationary(benchmark):
    """Time the generic linear-algebra stationary solve on the same chain."""
    chain = SuffixChain(PARAMS)
    numeric = benchmark(chain.numerical_stationary)
    closed = chain.closed_form_stationary()
    worst = max(abs(closed[state] - numeric[state]) for state in chain.states)
    print(f"\nC_F stationary: max |closed-form - numerical| = {worst:.3e} "
          f"over {chain.n_states} states (Delta = {chain.delta})")
    assert worst < 1e-9


@pytest.mark.benchmark(group="markov")
def test_convergence_opportunity_probability(benchmark):
    """Time Eq. (44) (log-space product) at the paper's Delta = 1e13 scale."""
    paper = parameters_from_c(c=10.0, n=100_000, delta=10**13, nu=0.25)
    chain = ConcatChain(paper)
    value = benchmark(chain.log_convergence_opportunity_probability)
    assert np.isfinite(value)


@pytest.mark.benchmark(group="markov")
def test_mixing_time_of_suffix_chain(benchmark):
    """Time the (1/8)-mixing-time computation used by Inequality (47)."""
    markov = SuffixChain(PARAMS).to_markov_chain()
    tau = benchmark(mixing_time, markov, 0.125)
    rows = [
        {
            "delta": PARAMS.delta,
            "states": markov.n_states,
            "mixing_time(1/8)": tau,
            "spectral_gap": spectral_gap(markov),
        }
    ]
    print("\nC_F mixing diagnostics")
    print(render_table(rows))
    assert tau >= 1


@pytest.mark.benchmark(group="markov")
def test_mixing_time_scaling_in_delta(benchmark):
    """Mixing time across Delta = 2..10: the input to the concentration bound."""

    def sweep():
        results = []
        for delta in (2, 4, 6, 8, 10):
            params = parameters_from_c(c=4.0, n=1_000, delta=delta, nu=0.2)
            markov = SuffixChain(params).to_markov_chain()
            results.append(
                {
                    "delta": delta,
                    "states": markov.n_states,
                    "mixing_time(1/8)": mixing_time(markov, 0.125),
                }
            )
        return results

    rows = benchmark(sweep)
    print("\nC_F mixing time versus Delta")
    print(render_table(rows))
