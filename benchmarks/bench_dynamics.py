"""Benchmark: the vectorized schedule-compilation kernel versus its reference.

The dynamics subsystem compiles a whole event timeline — churn, latency
drift, partitions — into per-round delivery tensors with one min-plus
distance computation per epoch plus a vectorized boundary continuation; the
reference implementation re-runs a pure-Python Dijkstra flood and a scalar
epoch chain for every single (round, origin) cell.  This file times both
sides on the same workload, asserts the >= 5x speedup gate from the issue,
and prints the violation-depth-versus-partition-duration table the
subsystem unlocks.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_scale, record_trajectory

from repro.analysis import partition_depth_sweep, render_table
from repro.params import parameters_from_c
from repro.simulation import (
    ChurnEvent,
    DynamicsSchedule,
    LatencyDriftEvent,
    PartitionEvent,
    PeerGraphTopology,
    ScenarioSimulation,
    TimeVaryingDelayModel,
    compile_schedule,
    reference_compile_schedule,
)

NODES = bench_scale(24, 48)
ROUNDS = bench_scale(400, 1_500)
DEGREE = 4


def workload():
    """A seeded graph plus a schedule exercising every event kind."""
    topology = PeerGraphTopology.random_regular(NODES, DEGREE, rng=7)
    schedule = DynamicsSchedule(
        [
            ChurnEvent(ROUNDS // 8, (1, 3), duration=ROUNDS // 6),
            LatencyDriftEvent(ROUNDS // 4, 2.0, duration=ROUNDS // 4),
            PartitionEvent(
                ROUNDS // 2, ROUNDS // 6, nodes=tuple(range(NODES // 4))
            ),
        ]
    )
    return topology, schedule, topology.diameter


def test_schedule_compilation_speedup_over_reference():
    """The vectorized compiler must beat the per-cell reference by >= 5x.

    Both sides compile the same schedule against the same graph and must
    produce identical offset and active tensors.
    """
    topology, schedule, delta = workload()

    start = time.perf_counter()
    reference = reference_compile_schedule(schedule, topology, ROUNDS, delta)
    reference_seconds = time.perf_counter() - start

    vectorized = None
    vectorized_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        vectorized = compile_schedule(schedule, topology, ROUNDS, delta)
        vectorized_seconds = min(vectorized_seconds, time.perf_counter() - start)

    speedup = reference_seconds / vectorized_seconds
    print(
        f"\nSchedule compilation speedup at {NODES} nodes x {ROUNDS} rounds: "
        f"reference {reference_seconds:.3f}s, vectorized "
        f"{vectorized_seconds:.4f}s, {speedup:.1f}x"
    )
    assert np.array_equal(vectorized.offsets, reference.offsets)
    assert np.array_equal(vectorized.active, reference.active)
    assert speedup >= 5.0, (
        f"vectorized schedule compiler only {speedup:.1f}x faster than the "
        "per-cell reference"
    )

    record_trajectory(
        "dynamics",
        {
            "nodes": NODES,
            "degree": DEGREE,
            "rounds": ROUNDS,
            "reference_seconds": reference_seconds,
            "vectorized_seconds": vectorized_seconds,
            "speedup": speedup,
            "gate": 5.0,
        },
    )


@pytest.mark.benchmark(group="dynamics")
def test_partition_scenario_throughput(benchmark):
    """Raw scenario-engine throughput under a scheduled partition attack."""
    trials = bench_scale(4, 8)
    rounds = bench_scale(1_000, 3_000)
    params = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)
    result = benchmark(
        lambda: ScenarioSimulation(params, "partition_attack", rng=0).run(
            trials, rounds
        )
    )
    assert result.delay_model == "time_varying"


@pytest.mark.benchmark(group="dynamics")
def test_partition_depth_sweep_throughput(benchmark):
    """Time the violation-depth sweep and print the monotone table."""
    trials = bench_scale(4, 12)
    rounds = bench_scale(1_200, 4_000)
    rows = benchmark(
        partition_depth_sweep,
        (0, rounds // 16, rounds // 8, rounds // 4),
        c=2.0,
        n=500,
        delta=3,
        nu=0.25,
        trials=trials,
        rounds=rounds,
        seed=17,
    )
    print("\nViolation depth versus partition duration (c = 2, nu = 0.25)")
    print(
        render_table(
            [
                {
                    "duration": row["partition_duration"],
                    "mean depth": row["mean_violation_depth"],
                    "max depth": row["max_violation_depth"],
                    "co rate": row["mean_convergence_rate"],
                    "predicted (static)": row["predicted_rate_unpartitioned"],
                    "lemma1 fraction": row["lemma1_fraction"],
                }
                for row in rows
            ]
        )
    )
    depths = [row["mean_violation_depth"] for row in rows]
    assert depths == sorted(depths)


@pytest.mark.benchmark(group="dynamics")
def test_time_varying_draw_throughput(benchmark):
    """Per-draw cost of a compiled schedule (compilation amortised away)."""
    topology, schedule, delta = workload()
    model = TimeVaryingDelayModel(schedule, topology=topology)
    trials = bench_scale(8, 32)
    model.compiled(ROUNDS, delta)  # warm the cache; draws should be cheap
    delays = benchmark(
        lambda: model.draw_delays(
            trials, ROUNDS, delta, np.random.default_rng(0)
        )
    )
    assert delays.shape == (trials, ROUNDS)
