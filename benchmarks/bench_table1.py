"""Benchmark / regeneration of Table I (notation and derived quantities).

Table I of the paper defines p, n, Delta, c, mu, nu, alpha, alpha_bar and
alpha1.  This benchmark evaluates all derived quantities at the paper's
Figure 1 operating point (n = 1e5, Delta = 1e13) and at a simulation-scale
point, and prints both tables.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, table_i
from repro.params import parameters_from_c


@pytest.mark.benchmark(group="table1")
def test_table1_paper_scale(benchmark):
    """Derived quantities at the paper's operating point (log-space safe)."""

    def build():
        params = parameters_from_c(c=10.0, n=100_000, delta=10**13, nu=0.25)
        return table_i(params), params

    rows, params = benchmark(build)
    assert len(rows) == 9
    print("\nTable I at the paper scale (c=10, n=1e5, Delta=1e13, nu=0.25)")
    print(render_table(rows))
    print(f"log convergence-opportunity probability: "
          f"{params.log_convergence_opportunity_probability:.6g}")


@pytest.mark.benchmark(group="table1")
def test_table1_simulation_scale(benchmark):
    """Derived quantities at the validation scale used by the simulator."""

    def build():
        params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
        return table_i(params)

    rows = benchmark(build)
    print("\nTable I at the simulation scale (c=4, n=1e3, Delta=3, nu=0.2)")
    print(render_table(rows))
