"""Benchmark / regeneration of the concentration-bound machinery (Section V-B/V-C).

Evaluates the Chernoff-Hoeffding lower-tail bound for the convergence
opportunity count (Inequality 47), the relative-entropy upper-tail bound for
the adversarial block count (Inequalities 48-49) and their union (display 25)
across window lengths T, demonstrating the "overwhelming probability in T"
decay that defines consistency.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core.concentration import (
    consistency_failure_bound,
    window_for_target_failure,
)
from repro.core.suffix_chain import SuffixChain
from repro.markov import mixing_time
from repro.params import parameters_from_c

PARAMS = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)


def _mixing_time() -> float:
    return float(mixing_time(SuffixChain(PARAMS).to_markov_chain(), epsilon=0.125))


@pytest.mark.benchmark(group="concentration")
def test_failure_bound_decay_in_window_length(benchmark):
    """The union bound of display (25) across window lengths."""
    tau = _mixing_time()

    def sweep():
        return [
            consistency_failure_bound(PARAMS, rounds, delta1=0.5, mixing_time=tau)
            for rounds in (10_000, 50_000, 250_000, 1_000_000, 4_000_000)
        ]

    bounds = benchmark(sweep)
    rows = [
        {
            "window T": bound.rounds,
            "P[C too small] bound": bound.convergence_tail,
            "P[A too large] bound": bound.adversary_tail,
            "union bound": bound.total,
            "guaranteed C - A gap": bound.guaranteed_gap,
        }
        for bound in bounds
    ]
    print("\nConsistency failure-probability bounds (Inequalities 47-49, display 25)")
    print(render_table(rows))

    totals = [bound.total for bound in bounds]
    assert totals == sorted(totals, reverse=True)
    assert totals[-1] < totals[0]


@pytest.mark.benchmark(group="concentration")
def test_window_for_one_percent_failure(benchmark):
    """Invert the bound: the smallest window with failure probability <= 1%."""
    tau = _mixing_time()
    window = benchmark(
        window_for_target_failure, PARAMS, 0.5, tau, 0.01
    )
    achieved = consistency_failure_bound(PARAMS, window, 0.5, tau).total
    print(f"\nSmallest T with failure bound <= 1%: {window} rounds "
          f"(achieved bound {achieved:.3e})")
    assert achieved <= 0.01


@pytest.mark.benchmark(group="concentration")
def test_failure_bound_across_delta1(benchmark):
    """Sensitivity of the bound to the Theorem 1 margin constant delta1."""
    tau = _mixing_time()

    def sweep():
        return {
            delta1: consistency_failure_bound(
                PARAMS, 1_000_000, delta1=delta1, mixing_time=tau
            ).total
            for delta1 in (0.05, 0.1, 0.25, 0.5, 1.0)
        }

    totals = benchmark(sweep)
    rows = [{"delta1": key, "union bound at T=1e6": value} for key, value in totals.items()]
    print("\nFailure bound versus delta1 (T = 1e6)")
    print(render_table(rows))
