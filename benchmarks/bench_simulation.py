"""Benchmark / regeneration of the consistency-versus-attack crossover.

Figure 1's interpretation is that points above the magenta curve are
consistent while points above the red curve are attackable.  This benchmark
simulates the private-chain withholding attack at representative (c, nu)
points on both sides of the curves and prints the resulting Lemma 1 margins
and consistency-violation depths.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_scale

from repro.analysis import batch_simulation_sweep, render_table, simulation_sweep
from repro.params import parameters_from_c
from repro.simulation import (
    BatchSimulation,
    NakamotoSimulation,
    PassiveAdversary,
    PrivateChainAdversary,
)

#: Scenarios straddling the bound/attack curves (Delta = 3, n = 500).
SCENARIOS = [
    {"c": 6.0, "nu": 0.15},   # far above the neat bound: consistent
    {"c": 6.0, "nu": 0.30},   # above the neat bound: consistent
    {"c": 1.0, "nu": 0.40},   # below the neat bound and below the attack curve
    {"c": 0.5, "nu": 0.45},   # deep in the attack region
]


@pytest.mark.benchmark(group="simulation")
def test_consistency_attack_crossover(benchmark):
    """Time the four-scenario withholding-attack sweep and print the verdicts."""
    results = benchmark(simulation_sweep, SCENARIOS, 8_000, 500, 3, 17)
    rows = [
        {
            "c": scenario.c,
            "nu": scenario.nu,
            "neat bound satisfied": scenario.neat_bound_satisfied,
            "attack predicted": scenario.attack_predicted,
            "convergence opps": scenario.convergence_opportunities,
            "adversary blocks": scenario.adversary_blocks,
            "C - A margin": scenario.lemma1_margin,
            "max violation depth": scenario.max_violation_depth,
        }
        for scenario in results
    ]
    print("\nWithholding-attack simulation across the (c, nu) plane")
    print(render_table(rows))

    # Shape check: safe scenarios keep a positive Lemma 1 margin; the deep
    # attack scenario shows deep reorganisations.
    assert results[0].lemma1_margin > 0
    assert results[1].lemma1_margin > 0
    assert results[-1].max_violation_depth >= 6 or results[-1].lemma1_margin < 0


@pytest.mark.benchmark(group="simulation")
def test_simulation_throughput_passive(benchmark):
    """Raw simulator throughput with a passive adversary (rounds/second)."""
    params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)

    def run():
        return NakamotoSimulation(
            params, adversary=PassiveAdversary(3), rng=np.random.default_rng(0)
        ).run(5_000)

    result = benchmark(run)
    assert result.rounds == 5_000


@pytest.mark.benchmark(group="simulation")
def test_batch_engine_throughput(benchmark):
    """Vectorized batch throughput: (trials x rounds) protocol rounds per call."""
    params = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
    trials = bench_scale(8, 64)
    rounds = bench_scale(2_000, 10_000)

    result = benchmark(lambda: BatchSimulation(params, rng=0).run(trials, rounds))
    assert result.trials == trials
    assert result.rounds == rounds


@pytest.mark.benchmark(group="simulation")
def test_batch_sweep_crossover(benchmark):
    """The batch-engine counterpart of the crossover sweep, with Lemma 1 fractions."""
    trials = bench_scale(4, 16)
    rounds = bench_scale(2_000, 8_000)
    rows = benchmark(batch_simulation_sweep, SCENARIOS, trials, rounds, 500, 3, 17)
    print("\nBatch Monte Carlo sweep across the (c, nu) plane")
    print(
        render_table(
            [
                {
                    "c": row["c"],
                    "nu": row["nu"],
                    "neat bound satisfied": row["neat_bound_satisfied"],
                    "attack predicted": row["attack_predicted"],
                    "mean conv rate": row["mean_convergence_rate"],
                    "mean adv rate": row["mean_adversary_rate"],
                    "lemma1 fraction": row["lemma1_fraction"],
                    "max worst deficit": row["max_worst_deficit"],
                }
                for row in rows
            ]
        )
    )
    # Safe scenarios hold the Lemma 1 event in (almost) every trial; the deep
    # attack region loses it in (almost) every trial.
    assert rows[0]["lemma1_fraction"] > 0.9
    assert rows[-1]["lemma1_fraction"] < 0.1


@pytest.mark.benchmark(group="simulation")
def test_simulation_throughput_private_attack(benchmark):
    """Raw simulator throughput with the withholding attacker."""
    params = parameters_from_c(c=1.0, n=1_000, delta=3, nu=0.4)

    def run():
        return NakamotoSimulation(
            params,
            adversary=PrivateChainAdversary(3, target_depth=6),
            rng=np.random.default_rng(0),
        ).run(5_000)

    result = benchmark(run)
    assert result.rounds == 5_000
