"""Benchmark: the backend layer's preallocated-workspace path and dispatch.

Two claims are measured:

* **workspace reuse** — running the batch engine's deterministic analysis
  half (`run_traces`: convergence-opportunity mask + worst-window deficit
  scan) through one shared :class:`repro.backend.Workspace` must beat the
  per-call-allocation reference path by >= 1.5x.  The workspace path is the
  slice-view / ``out=`` kernel writing into reused buffers; the reference
  path is the historical expression pipeline that allocates every
  intermediate afresh on each call.  Both produce bit-identical results
  (asserted here and pinned by ``tests/test_backend_equivalence.py``).
* **accelerator availability** — every registered backend is probed; when
  an accelerator (CuPy / torch via ``array_api_compat``) is installed its
  engine throughput is recorded as an extra datapoint, and when it is not
  the probe prints the skip reason instead of failing — the layer must
  degrade gracefully on CPU-only machines like the CI runners.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_scale, record_trajectory
from repro.backend import (
    Workspace,
    backend_specs,
    get_backend,
    use_backend,
)
from repro.params import parameters_from_c
from repro.simulation import BatchSimulation, ScenarioSimulation, draw_mining_traces

TRIALS = bench_scale(128, 256)
ROUNDS = bench_scale(4_000, 8_000)
REPEATS = bench_scale(10, 20)
PARAMS = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)

#: The issue's quick-mode gate for workspace reuse over per-call allocation.
WORKSPACE_SPEEDUP_GATE = 1.5


def _best_of(repeats, callable_):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_workspace_reuse_beats_per_call_allocation():
    """The preallocated-workspace analysis path must be >= 1.5x faster.

    Both sides analyse the *same* pre-drawn (trials, rounds) tensors, so the
    comparison isolates the deterministic hot kernels: the reference side
    allocates each intermediate per call, the workspace side reuses warm
    buffers through slice-view ``out=`` stores.
    """
    honest, adversary = draw_mining_traces(PARAMS, TRIALS, ROUNDS, rng=0)
    reference_engine = BatchSimulation(PARAMS, rng=0)
    workspace = Workspace()
    pooled_engine = BatchSimulation(PARAMS, rng=0, workspace=workspace)

    reference_result = reference_engine.run_traces(honest, adversary)
    pooled_result = pooled_engine.run_traces(honest, adversary)
    assert np.array_equal(
        reference_result.convergence_opportunities,
        pooled_result.convergence_opportunities,
    )
    assert np.array_equal(
        reference_result.worst_deficits, pooled_result.worst_deficits
    )

    reference_seconds = _best_of(
        REPEATS, lambda: reference_engine.run_traces(honest, adversary)
    )
    pooled_seconds = _best_of(
        REPEATS, lambda: pooled_engine.run_traces(honest, adversary)
    )
    speedup = reference_seconds / pooled_seconds
    print(
        f"\nWorkspace reuse at {TRIALS} trials x {ROUNDS} rounds: "
        f"per-call allocation {reference_seconds * 1e3:.2f}ms, workspace "
        f"{pooled_seconds * 1e3:.2f}ms, {speedup:.2f}x "
        f"({workspace.nbytes / 1e6:.1f} MB pooled across {len(workspace.tags)} buffers)"
    )
    assert speedup >= WORKSPACE_SPEEDUP_GATE, (
        f"workspace path only {speedup:.2f}x faster than per-call allocation"
    )

    record_trajectory(
        "backend",
        {
            "trials": TRIALS,
            "rounds": ROUNDS,
            "repeats": REPEATS,
            "reference_seconds": reference_seconds,
            "workspace_seconds": pooled_seconds,
            "speedup": speedup,
            "workspace_nbytes": workspace.nbytes,
            "gate": WORKSPACE_SPEEDUP_GATE,
        },
    )


def test_backend_datapoints_with_graceful_skips():
    """Record an engine throughput datapoint per *available* backend.

    On a machine with CuPy or torch installed this prints the accelerator
    datapoint (the GPU number the issue asks to record when hardware is
    present); everywhere else the probe reports the documented skip reason.
    """
    trials = bench_scale(32, 64)
    rounds = bench_scale(1_000, 4_000)
    recorded = {}
    for name, spec in sorted(backend_specs().items()):
        if not spec["available"]:
            print(f"\nbackend {name}: skipped ({spec['error']})")
            continue
        with use_backend(name):
            engine = BatchSimulation(PARAMS, rng=0, workspace=Workspace())
            seconds = _best_of(3, lambda: engine.run(trials, rounds))
        cells = trials * rounds / seconds
        recorded[name] = cells
        device = spec.get("device") or spec.get("module") or "host"
        print(
            f"\nbackend {name} [{device}]: {seconds * 1e3:.2f}ms for "
            f"{trials}x{rounds} ({cells / 1e6:.1f}M cells/s)"
        )
    # The NumPy reference backend is unconditionally available; accelerator
    # rows appear exactly when their optional dependency is installed.
    assert "numpy" in recorded
    assert get_backend("numpy").name == "numpy"


@pytest.mark.benchmark(group="backend")
def test_scenario_engine_workspace_throughput(benchmark):
    """Scenario-engine throughput with a persistent workspace (regression
    guard for the scan-state pooling)."""
    params = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)
    workspace = Workspace()
    trials = bench_scale(16, 32)
    rounds = bench_scale(800, 2_000)
    result = benchmark(
        lambda: ScenarioSimulation(
            params, "private_chain", rng=0, workspace=workspace
        ).run(trials, rounds)
    )
    assert result.trials == trials
