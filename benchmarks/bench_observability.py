"""Benchmark: the observability layer's own cost and coverage guarantees.

Three claims are measured, gating the instrumentation subsystem itself:

* **no-op overhead** — with no tracer or metrics registry installed (the
  default), the instrumentation call sites the batch engine executes must
  cost **< 2%** of the batch bench workload's wall time.  The bound is
  computed analytically rather than by noisy A/B timing: one traced run
  counts exactly how many span and metric calls the workload executes, a
  tight loop measures the per-call cost of the *disabled* dispatch path
  (one attribute check), and the product must sit under the gate.
* **span coverage** — with a tracer installed, a dynamics grid run through
  the :class:`~repro.simulation.ExperimentRunner` must emit root spans
  covering **>= 90%** of the measured wall time, and one schema-valid JSONL
  manifest record per grid point (the provenance trail the issue asks for).
* **trajectory validity** — the committed ``BENCH_trajectory.json`` must
  validate against the ``repro.bench_trajectory`` schema, and the
  :func:`conftest.record_trajectory` helper must append schema-valid
  records under ``REPRO_BENCH_RECORD=1``.
* **sharded telemetry** — a ``processes=2`` grid run with tracing, metrics
  and a run log active must merge every worker's spans / counters /
  manifest lines into the parent (shard-stamped), and the perf-regression
  sentinel (:func:`repro.analysis.perf_report.detect_regressions`) must
  pass on the committed trajectory.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from conftest import bench_scale, record_trajectory

from repro.observability import (
    METRICS,
    TRACE,
    Metrics,
    load_trajectory,
    read_run_log,
    use_metrics,
    use_tracer,
)
from repro.params import parameters_from_c
from repro.simulation import (
    BatchSimulation,
    DynamicsSchedule,
    ExperimentRunner,
    PartitionEvent,
)

TRIALS = bench_scale(64, 256)
ROUNDS = bench_scale(2_000, 8_000)
PARAMS = parameters_from_c(c=2.0, n=400, delta=3, nu=0.25)

#: The issue's gate: disabled instrumentation must cost < 2% of the batch
#: bench workload.
OVERHEAD_GATE = 0.02

#: The issue's gate: an instrumented dynamics grid run must attribute >= 90%
#: of its wall time to spans.
COVERAGE_GATE = 0.90

#: Iterations for timing the disabled dispatch path (cheap: ~100ns/call).
PROBE_CALLS = 200_000

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


class _CallCountingMetrics(Metrics):
    """A registry that additionally counts how many times it was called."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def increment(self, name, value=1):
        self.calls += 1
        super().increment(name, value)

    def gauge(self, name, value):
        self.calls += 1
        super().gauge(name, value)


def _per_call_seconds(callable_, calls=PROBE_CALLS):
    start = time.perf_counter()
    for _ in range(calls):
        callable_()
    return (time.perf_counter() - start) / calls


def test_noop_instrumentation_overhead_under_gate():
    """Disabled spans and counters must cost < 2% of the batch bench run.

    The engine's instrumentation sites are fixed per workload, so the no-op
    overhead is (sites executed) x (cost of one disabled dispatch); both
    factors are measured here rather than assumed.
    """
    if TRACE.enabled or METRICS.enabled:
        pytest.skip("instrumentation globally enabled (REPRO_TRACE=1)")

    engine = BatchSimulation(PARAMS, rng=0)
    run_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        engine.run(TRIALS, ROUNDS)
        run_seconds = min(run_seconds, time.perf_counter() - start)

    # Count the call sites the identical workload actually executes.
    counting = _CallCountingMetrics()
    with use_tracer() as tracer, use_metrics(counting):
        engine.run(TRIALS, ROUNDS)
    span_calls = sum(1 for _ in tracer.walk())
    metric_calls = counting.calls

    def _noop_span():
        with TRACE.span("overhead-probe"):
            pass

    span_seconds = _per_call_seconds(_noop_span)
    increment_seconds = _per_call_seconds(
        lambda: METRICS.increment("overhead-probe")
    )

    overhead = span_calls * span_seconds + metric_calls * increment_seconds
    fraction = overhead / run_seconds
    print(
        f"\nNo-op instrumentation at {TRIALS} trials x {ROUNDS} rounds: "
        f"{span_calls} spans x {span_seconds * 1e9:.0f}ns + "
        f"{metric_calls} metric calls x {increment_seconds * 1e9:.0f}ns = "
        f"{overhead * 1e6:.1f}us over a {run_seconds * 1e3:.1f}ms run "
        f"({fraction * 100:.4f}%, gate {OVERHEAD_GATE * 100:.0f}%)"
    )
    assert fraction < OVERHEAD_GATE, (
        f"disabled instrumentation costs {fraction * 100:.2f}% of the batch "
        f"bench run (gate {OVERHEAD_GATE * 100:.0f}%)"
    )

    record_trajectory(
        "observability",
        {
            "trials": TRIALS,
            "rounds": ROUNDS,
            "span_calls": span_calls,
            "metric_calls": metric_calls,
            "noop_span_seconds": span_seconds,
            "noop_increment_seconds": increment_seconds,
            "run_seconds": run_seconds,
            "overhead_fraction": fraction,
            "gate": OVERHEAD_GATE,
        },
    )


def test_traced_dynamics_grid_covers_wall_time_and_logs_manifests(tmp_path):
    """An instrumented dynamics grid run must be >= 90% span-covered.

    Each grid point must also land one schema-valid manifest record in the
    runner's JSONL log (validated on read by ``read_run_log``).
    """
    trials = bench_scale(12, 24)
    rounds = bench_scale(1_200, 2_000)
    grid = [(0.2, 3), (0.3, 4)]
    schedule = DynamicsSchedule([PartitionEvent(rounds // 4, rounds // 8)])
    log_path = tmp_path / "run_log.jsonl"
    runner = ExperimentRunner(
        base_seed=2026, cache_dir=str(tmp_path / "cache"), run_log=log_path
    )

    with use_tracer() as tracer, use_metrics():
        # One tiny warm-up point pays the lazy-import and first-call costs
        # outside the measured window, then the trace forest is cleared.
        runner.run_point(parameters_from_c(c=2.0, n=400, delta=3, nu=0.2), 2, 50)
        tracer.reset()
        start = time.perf_counter()
        for nu, delta in grid:
            params = parameters_from_c(c=2.0, n=400, delta=delta, nu=nu)
            runner.run_dynamics_point(params, trials, rounds, schedule=schedule)
        wall_seconds = time.perf_counter() - start

    covered = tracer.total_time()
    coverage = covered / wall_seconds
    print(
        f"\nTraced dynamics grid ({len(grid)} points, {trials} trials x "
        f"{rounds} rounds): {covered * 1e3:.1f}ms in spans of "
        f"{wall_seconds * 1e3:.1f}ms wall ({coverage * 100:.1f}%, gate "
        f"{COVERAGE_GATE * 100:.0f}%)"
    )
    assert coverage >= COVERAGE_GATE, (
        f"spans cover only {coverage * 100:.1f}% of the grid run's wall time"
    )

    records = [
        record
        for record in read_run_log(log_path)
        if record["method"] == "run_dynamics_point"
    ]
    assert len(records) == len(grid)
    for record in records:
        assert record["cache"] == "miss"
        assert record["result_digest"]
        assert record["base_seed"] == 2026


def test_committed_trajectory_validates_and_appends(tmp_path, monkeypatch):
    """The committed trajectory file must be schema-valid end to end.

    Also exercises the append path the six gated benches share: under
    ``REPRO_BENCH_RECORD=1`` with ``REPRO_BENCH_TRAJECTORY`` pointing at a
    scratch file, ``record_trajectory`` must append a schema-valid record
    (this is the path the CI smoke step validates).
    """
    entries = load_trajectory(REPO_ROOT / "BENCH_trajectory.json")
    assert entries, "committed trajectory must carry the migrated history"
    benchmarks = {entry["benchmark"] for entry in entries}
    # Seeded from the two pre-schema files' migrated entries.
    assert {"equivocation", "rare_events"} <= benchmarks

    scratch = tmp_path / "trajectory.json"
    monkeypatch.setenv("REPRO_BENCH_RECORD", "1")
    monkeypatch.setenv("REPRO_BENCH_TRAJECTORY", str(scratch))
    record_trajectory("observability", {"probe_seconds": 0.001})
    record_trajectory("observability", {"probe_seconds": 0.002})
    appended = load_trajectory(scratch)
    assert [entry["metrics"]["probe_seconds"] for entry in appended] == [
        0.001,
        0.002,
    ]
    assert all(entry["benchmark"] == "observability" for entry in appended)


def test_sharded_grid_observability_smoke(tmp_path):
    """Quick cross-process telemetry smoke: the CI-facing acceptance check.

    A ``processes=2`` sharded ``run_grid`` under tracer + metrics + run log
    must produce one shard-stamped manifest line per point, per-method cache
    counters in the parent registry, and worker span trees grafted under the
    ``runner.run_grid`` root.
    """
    trials = bench_scale(4, 8)
    rounds = bench_scale(400, 1_000)
    points = [
        parameters_from_c(c=2.0, n=400, delta=delta, nu=0.25)
        for delta in (3, 4, 5)
    ]
    log_path = tmp_path / "run_log.jsonl"
    runner = ExperimentRunner(
        base_seed=2026,
        cache_dir=str(tmp_path / "cache"),
        processes=2,
        run_log=log_path,
    )
    with use_tracer() as tracer, use_metrics() as metrics:
        results = runner.run_grid(points, trials, rounds)
    assert len(results) == len(points)

    records = read_run_log(log_path)
    assert len(records) == len(points)
    assert sorted(record["extra"]["shard"] for record in records) == [0, 1, 2]
    assert all("resources" in record["extra"] for record in records)
    assert metrics.counter("runner.run_point.cache_misses") == len(points)

    (root,) = tracer.roots
    assert root.name == "runner.run_grid"
    assert [child.attributes["shard"] for child in root.children] == [0, 1, 2]
    assert {record.name for record in root.walk()} >= {
        "runner.run_grid",
        "runner.run_point",
        "batch.run",
    }


def test_perf_sentinel_passes_on_committed_trajectory():
    """The CI sentinel must hold on the history this revision ships."""
    from repro.analysis import detect_regressions

    verdicts = detect_regressions(REPO_ROOT / "BENCH_trajectory.json")
    assert verdicts, "committed trajectory must produce sentinel verdicts"
    regressed = [verdict for verdict in verdicts if verdict["regressed"]]
    assert not regressed, f"committed trajectory regressed: {regressed}"
