"""Benchmark: variance reduction and deep-tail reach of the rare-event engine.

Two claims are measured, both on the overlap-region anchor point
``parameters_from_c(c=4.0, n=1000, delta=3, nu=0.2)``:

* **variance reduction** — at an equal trial budget, the exponentially
  tilted estimator of ``P[worst windowed A-C deficit >= depth]`` must cut
  the per-trial estimator variance by >= 10x versus plain Monte Carlo.
  The tilted side reports its variance directly (``relative_error`` times
  the estimate, squared, times trials); the plain-MC side's per-trial
  variance is the Bernoulli ``p (1 - p)`` at the same probability, so the
  ratio is exactly the factor by which tilting shrinks the trial budget
  needed for a target confidence width.  Fixed-effort splitting is timed
  alongside as an ungated datapoint.
* **deep-tail reach** — the tilted estimator must resolve a tail that
  plain MC cannot touch at any feasible budget (``depth=18``, probability
  around 1e-8) with a bounded relative error.

Run directly (``python -m pytest benchmarks/bench_rare_events.py``) the
module also refreshes ``BENCH_rare_events.json`` at the repo root when
``REPRO_BENCH_RECORD=1`` — the persisted perf-trajectory entry the
roadmap asks for.

Migration note: ``BENCH_rare_events.json`` predates the unified
``repro.bench_trajectory`` schema.  Its historical entries were lifted into
the committed ``BENCH_trajectory.json`` via
:func:`repro.observability.migrate_legacy_entries` (``timestamp`` and
``machine`` are ``None`` there — the legacy file never recorded them), and
new measurements are appended to *both* files: the legacy file keeps its
original flat shape for existing consumers, the trajectory gets the
schema-versioned record via :func:`conftest.record_trajectory`.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time

from conftest import bench_scale, record_trajectory
from repro._version import __version__
from repro.params import parameters_from_c
from repro.simulation import RareEventSimulation

TRIALS = bench_scale(2_000, 6_000)
ROUNDS = 400
PILOT_TRIALS = bench_scale(256, 512)
MAX_ITERATIONS = bench_scale(10, 15)
DEEP_TRIALS = bench_scale(1_500, 4_000)
PARAMS = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
#: Overlap-region depth where plain MC still resolves the event (~1e-4).
OVERLAP_DEPTH = 10
#: Deep-tail depth far beyond any feasible plain-MC budget (~1e-8).
DEEP_DEPTH = 18
SEED = 2026

#: The issue's gate: tilted importance sampling must be worth >= 10x the
#: plain-MC trial budget at an equal number of trials.
VARIANCE_REDUCTION_GATE = 10.0

RECORD_ENV_VAR = "REPRO_BENCH_RECORD"
RECORD_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_rare_events.json"


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def _tilted_variance_per_trial(result):
    """Per-trial variance of the importance-sampling estimator."""
    return (result.relative_error * result.probability) ** 2 * result.trials


def _record(payload):
    """Append the measured datapoint to the committed perf trajectory."""
    if os.environ.get(RECORD_ENV_VAR, "") != "1":
        return
    history = []
    if RECORD_PATH.exists():
        history = json.loads(RECORD_PATH.read_text())["entries"]
    history.append(payload)
    RECORD_PATH.write_text(
        json.dumps({"benchmark": "rare_events", "entries": history}, indent=2)
        + "\n"
    )


def test_tilted_variance_reduction_beats_plain_mc():
    """Tilting must cut per-trial estimator variance >= 10x at equal budget."""
    tilted, tilted_seconds = _timed(
        lambda: RareEventSimulation(PARAMS, depth=OVERLAP_DEPTH, rng=SEED).run_tilted(
            TRIALS,
            ROUNDS,
            pilot_trials=PILOT_TRIALS,
            max_iterations=MAX_ITERATIONS,
        )
    )
    splitting, splitting_seconds = _timed(
        lambda: RareEventSimulation(
            PARAMS, depth=OVERLAP_DEPTH, rng=SEED
        ).run_splitting(TRIALS, ROUNDS)
    )

    variance_tilted = _tilted_variance_per_trial(tilted)
    variance_plain = tilted.probability * (1.0 - tilted.probability)
    reduction = variance_plain / variance_tilted
    print(
        f"\nRare-event point depth={OVERLAP_DEPTH}, {TRIALS} trials x "
        f"{ROUNDS} rounds: tilted p={tilted.probability:.3e} "
        f"(relerr {tilted.relative_error:.3f}, ESS "
        f"{tilted.effective_sample_size:.1f}, {tilted_seconds * 1e3:.0f}ms), "
        f"splitting p={splitting.probability:.3e} "
        f"(relerr {splitting.relative_error:.3f}, "
        f"{splitting_seconds * 1e3:.0f}ms); variance reduction "
        f"{reduction:.1f}x over plain MC"
    )

    assert tilted.probability > 0.0
    assert math.isfinite(tilted.relative_error)
    # Splitting must land in the same decade — a sanity anchor, not a gate.
    assert 0.2 < splitting.probability / tilted.probability < 5.0
    assert reduction >= VARIANCE_REDUCTION_GATE, (
        f"tilted estimator only {reduction:.1f}x lower variance than plain MC"
    )

    payload = {
        "depth": OVERLAP_DEPTH,
        "trials": TRIALS,
        "rounds": ROUNDS,
        "seed": SEED,
        "tilted_probability": tilted.probability,
        "tilted_relative_error": tilted.relative_error,
        "tilted_effective_sample_size": tilted.effective_sample_size,
        "tilted_seconds": tilted_seconds,
        "splitting_probability": splitting.probability,
        "splitting_seconds": splitting_seconds,
        "variance_reduction": reduction,
        "gate": VARIANCE_REDUCTION_GATE,
    }
    _record({"version": __version__, **payload})
    record_trajectory("rare_events", payload)


def test_deep_tail_reach_beyond_plain_mc():
    """The tilted estimator must resolve a ~1e-8 tail with honest error bars.

    Plain MC would need >= 1e10 trials for a single expected hit here; the
    tilted run pins the decade with a bounded relative error from a few
    thousand trials in well under a second.
    """
    result, seconds = _timed(
        lambda: RareEventSimulation(PARAMS, depth=DEEP_DEPTH, rng=SEED).run_tilted(
            DEEP_TRIALS,
            ROUNDS,
            pilot_trials=PILOT_TRIALS,
            max_iterations=MAX_ITERATIONS,
        )
    )
    print(
        f"\nDeep tail depth={DEEP_DEPTH}, {DEEP_TRIALS} trials: "
        f"p={result.probability:.3e} in [{result.ci_low:.2e}, "
        f"{result.ci_high:.2e}] (relerr {result.relative_error:.3f}, "
        f"{seconds * 1e3:.0f}ms)"
    )
    assert 0.0 < result.probability <= 1e-7
    assert result.ci_high > result.probability
    assert 0.0 < result.relative_error < 1.0
