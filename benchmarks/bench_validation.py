"""Benchmark / regeneration of the theory-versus-simulation validation.

Validates the analytical identities of Section V — the stationary distribution
of C_F (Eqs. 37a-d) and the expectations E[C] = T alpha_bar^(2 Delta) alpha1
and E[A] = T p nu n (Eqs. 26-27, 44) — against sampled traces and against the
full protocol simulator, and prints the paper-vs-measured comparison rows.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_scale

from repro.analysis import (
    render_table,
    validate_expectations,
    validate_expectations_batch,
    validate_suffix_stationary,
)
from repro.params import parameters_from_c
from repro.simulation import BatchSimulation, NakamotoSimulation, PassiveAdversary, spawn_rngs

PARAMS = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)

#: Quick mode (REPRO_BENCH_QUICK=1) shrinks trial counts so the benchmark
#: suite doubles as a fast CI smoke test.
BATCH_TRIALS = bench_scale(4, 32)
BATCH_ROUNDS = bench_scale(1_500, 20_000)


@pytest.mark.benchmark(group="validation")
def test_suffix_stationary_validation(benchmark, rng):
    """Closed-form vs numerical vs sampled stationary distribution of C_F."""
    result = benchmark(
        validate_suffix_stationary, PARAMS, 60_000, np.random.default_rng(3)
    )
    print("\nC_F stationary distribution validation")
    print(
        render_table(
            [
                {
                    "delta": result.delta,
                    "rounds": result.rounds_sampled,
                    "max |closed - numerical|": result.max_closed_vs_numeric,
                    "max |closed - empirical|": result.max_closed_vs_empirical,
                    "TV(closed, empirical)": result.total_variation_empirical,
                }
            ]
        )
    )
    assert result.agrees()


@pytest.mark.benchmark(group="validation")
def test_expectations_iid_validation(benchmark):
    """Eq. (44) / Eq. (27) against i.i.d. sampled round traces."""
    result = benchmark(
        validate_expectations,
        PARAMS,
        60_000,
        np.random.default_rng(5),
        False,
    )
    print("\nExpected rates (i.i.d. trace) — Eq. 44 and Eq. 27")
    print(
        render_table(
            [
                {
                    "quantity": "convergence opportunities / round",
                    "theory": result.theoretical_convergence_rate,
                    "measured": result.empirical_convergence_rate,
                    "relative error": result.convergence_relative_error,
                },
                {
                    "quantity": "adversarial blocks / round",
                    "theory": result.theoretical_adversary_rate,
                    "measured": result.empirical_adversary_rate,
                    "relative error": result.adversary_relative_error,
                },
            ]
        )
    )
    # The statistical agreement check is enforced tightly in tests/; here the
    # benchmark may re-run the sampling many times, so only guard against
    # gross disagreement.
    assert result.agrees(tolerance=0.3)


@pytest.mark.benchmark(group="validation")
def test_expectations_batch_validation(benchmark):
    """Eq. (44) / Eq. (27) against the vectorized batch engine, with CIs."""
    result = benchmark(
        validate_expectations_batch,
        PARAMS,
        BATCH_TRIALS,
        BATCH_ROUNDS,
        np.random.default_rng(9),
    )
    print(f"\nBatch expectations ({result.trials} trials x {result.rounds} rounds)")
    print(
        render_table(
            [
                {
                    "quantity": "convergence opportunities / round",
                    "theory": result.theoretical_convergence_rate,
                    "batch mean": result.mean_convergence_rate,
                    "ci95 low": result.convergence_rate_ci95[0],
                    "ci95 high": result.convergence_rate_ci95[1],
                },
                {
                    "quantity": "adversarial blocks / round",
                    "theory": result.theoretical_adversary_rate,
                    "batch mean": result.mean_adversary_rate,
                    "ci95 low": result.adversary_rate_ci95[0],
                    "ci95 high": result.adversary_rate_ci95[1],
                },
            ]
        )
    )
    assert result.agrees(tolerance=0.3)
    assert result.lemma1_fraction > 0.5


def test_batch_engine_speedup_over_legacy_loop():
    """The batch engine must beat the legacy per-trial loop by >= 5x.

    Both sides execute the same number of (trials x rounds) protocol rounds
    with the same passive-adversary workload; the legacy side is the pure
    Python round loop, the batch side the vectorized engine.
    """
    trials = BATCH_TRIALS
    rounds = BATCH_ROUNDS

    start = time.perf_counter()
    for rng in spawn_rngs(0, trials):
        NakamotoSimulation(
            PARAMS, adversary=PassiveAdversary(PARAMS.delta), rng=rng
        ).run(rounds)
    legacy_seconds = time.perf_counter() - start

    batch_seconds = float("inf")
    for repeat in range(3):
        start = time.perf_counter()
        BatchSimulation(PARAMS, rng=repeat).run(trials, rounds)
        batch_seconds = min(batch_seconds, time.perf_counter() - start)

    speedup = legacy_seconds / batch_seconds
    print(
        f"\nBatch engine speedup at {trials} trials x {rounds} rounds: "
        f"legacy {legacy_seconds:.3f}s, batch {batch_seconds:.4f}s, {speedup:.1f}x"
    )
    assert speedup >= 5.0, f"batch engine only {speedup:.1f}x faster than legacy loop"


@pytest.mark.benchmark(group="validation")
def test_expectations_full_simulation_validation(benchmark):
    """Eq. (44) / Eq. (27) against the full protocol simulator."""
    result = benchmark(
        validate_expectations,
        PARAMS,
        20_000,
        np.random.default_rng(7),
        True,
    )
    print("\nExpected rates (full protocol simulation)")
    print(
        render_table(
            [
                {
                    "quantity": "convergence opportunities / round",
                    "theory": result.theoretical_convergence_rate,
                    "measured": result.empirical_convergence_rate,
                    "relative error": result.convergence_relative_error,
                },
                {
                    "quantity": "adversarial blocks / round",
                    "theory": result.theoretical_adversary_rate,
                    "measured": result.empirical_adversary_rate,
                    "relative error": result.adversary_relative_error,
                },
            ]
        )
    )
    assert result.agrees(tolerance=0.3)
