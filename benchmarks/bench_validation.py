"""Benchmark / regeneration of the theory-versus-simulation validation.

Validates the analytical identities of Section V — the stationary distribution
of C_F (Eqs. 37a-d) and the expectations E[C] = T alpha_bar^(2 Delta) alpha1
and E[A] = T p nu n (Eqs. 26-27, 44) — against sampled traces and against the
full protocol simulator, and prints the paper-vs-measured comparison rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    render_table,
    validate_expectations,
    validate_suffix_stationary,
)
from repro.params import parameters_from_c

PARAMS = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)


@pytest.mark.benchmark(group="validation")
def test_suffix_stationary_validation(benchmark, rng):
    """Closed-form vs numerical vs sampled stationary distribution of C_F."""
    result = benchmark(
        validate_suffix_stationary, PARAMS, 60_000, np.random.default_rng(3)
    )
    print("\nC_F stationary distribution validation")
    print(
        render_table(
            [
                {
                    "delta": result.delta,
                    "rounds": result.rounds_sampled,
                    "max |closed - numerical|": result.max_closed_vs_numeric,
                    "max |closed - empirical|": result.max_closed_vs_empirical,
                    "TV(closed, empirical)": result.total_variation_empirical,
                }
            ]
        )
    )
    assert result.agrees()


@pytest.mark.benchmark(group="validation")
def test_expectations_iid_validation(benchmark):
    """Eq. (44) / Eq. (27) against i.i.d. sampled round traces."""
    result = benchmark(
        validate_expectations,
        PARAMS,
        60_000,
        np.random.default_rng(5),
        False,
    )
    print("\nExpected rates (i.i.d. trace) — Eq. 44 and Eq. 27")
    print(
        render_table(
            [
                {
                    "quantity": "convergence opportunities / round",
                    "theory": result.theoretical_convergence_rate,
                    "measured": result.empirical_convergence_rate,
                    "relative error": result.convergence_relative_error,
                },
                {
                    "quantity": "adversarial blocks / round",
                    "theory": result.theoretical_adversary_rate,
                    "measured": result.empirical_adversary_rate,
                    "relative error": result.adversary_relative_error,
                },
            ]
        )
    )
    # The statistical agreement check is enforced tightly in tests/; here the
    # benchmark may re-run the sampling many times, so only guard against
    # gross disagreement.
    assert result.agrees(tolerance=0.3)


@pytest.mark.benchmark(group="validation")
def test_expectations_full_simulation_validation(benchmark):
    """Eq. (44) / Eq. (27) against the full protocol simulator."""
    result = benchmark(
        validate_expectations,
        PARAMS,
        20_000,
        np.random.default_rng(7),
        True,
    )
    print("\nExpected rates (full protocol simulation)")
    print(
        render_table(
            [
                {
                    "quantity": "convergence opportunities / round",
                    "theory": result.theoretical_convergence_rate,
                    "measured": result.empirical_convergence_rate,
                    "relative error": result.convergence_relative_error,
                },
                {
                    "quantity": "adversarial blocks / round",
                    "theory": result.theoretical_adversary_rate,
                    "measured": result.empirical_adversary_rate,
                    "relative error": result.adversary_relative_error,
                },
            ]
        )
    )
    assert result.agrees(tolerance=0.3)
