"""Ablation benchmark: the looseness of each proof step (Lemmas 4-8).

DESIGN.md calls out the chain of sufficiency steps (52)-(59) that turns the
exact Theorem 1 condition into the neat Theorem 2/3 bound.  This benchmark
computes, per adversarial fraction nu, the minimal c each intermediate step
requires, quantifying how much slack every lemma adds on top of the neat bound
— and, alongside it, the security-margin comparison against the PSS baseline
and the attack threshold.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    implication_chain_ablation,
    render_table,
    security_margin_sweep,
)

NU_GRID = [0.05, 0.1, 0.2, 0.3, 0.4, 0.45]


@pytest.mark.benchmark(group="ablation")
def test_implication_chain_ablation(benchmark):
    """Per-step c thresholds of the Lemma 4-8 chain (Delta = 10, n = 1e5)."""
    rows = benchmark(implication_chain_ablation, NU_GRID, 10, 100_000, 0.1, 0.01)
    print("\nPer-step c thresholds of the Theorem 1 -> Theorem 2 implication chain")
    print(render_table(rows))
    for row in rows:
        steps = [row[key] for key in sorted(row) if key.startswith("step_")]
        assert steps == sorted(steps)


@pytest.mark.benchmark(group="ablation")
def test_security_margin_comparison(benchmark):
    """Required c per analysis (ours vs PSS) and the attack threshold, per nu."""
    rows = benchmark(security_margin_sweep, NU_GRID)
    print("\nRequired c: the paper's bound vs PSS vs the attack threshold")
    print(render_table(rows))
    for row in rows:
        assert row["improvement_factor"] > 1.0
