"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's reported artefacts
(Figure 1, Table I, Remark 1, the validation studies) and prints the resulting
rows so the run log doubles as the reproduced table; the ``benchmark`` fixture
additionally records how long the regeneration takes.

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI smoke steps) shrinks
every workload so the whole suite runs in seconds while still exercising the
speedup gates.  The flag is read in exactly one place —
:func:`quick_mode` below — and every ``bench_*.py`` module sizes its
workloads through :func:`bench_scale`, so a new benchmark cannot quietly
invent its own environment handling.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

#: The environment flag the CI smoke steps set; read at call time so a test
#: harness can toggle it per-invocation.
QUICK_ENV_VAR = "REPRO_BENCH_QUICK"


def quick_mode() -> bool:
    """Whether the suite runs in the CI's shrunken quick mode."""
    return os.environ.get(QUICK_ENV_VAR, "0") == "1"


def bench_scale(quick, full):
    """``quick`` under ``REPRO_BENCH_QUICK=1``, ``full`` otherwise.

    The single sizing knob for benchmark workloads (trial counts, rounds,
    graph sizes): ``TRIALS = bench_scale(8, 64)``.
    """
    return quick if quick_mode() else full


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator so benchmark results are reproducible."""
    return np.random.default_rng(2026)
