"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's reported artefacts
(Figure 1, Table I, Remark 1, the validation studies) and prints the resulting
rows so the run log doubles as the reproduced table; the ``benchmark`` fixture
additionally records how long the regeneration takes.

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI smoke steps) shrinks
every workload so the whole suite runs in seconds while still exercising the
speedup gates.  The flag is read in exactly one place —
:func:`quick_mode` below — and every ``bench_*.py`` module sizes its
workloads through :func:`bench_scale`, so a new benchmark cannot quietly
invent its own environment handling.

Perf history rides along the same way: under ``REPRO_BENCH_RECORD=1`` every
gated benchmark calls :func:`record_trajectory` with its measured numbers,
appending one ``repro.bench_trajectory`` record to the unified
``BENCH_trajectory.json`` (or wherever ``REPRO_BENCH_TRAJECTORY`` points).
The flag gating is also in exactly one place — here — so a normal
``pytest benchmarks/`` run never mutates the committed trajectory file.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

#: The environment flag the CI smoke steps set; read at call time so a test
#: harness can toggle it per-invocation.
QUICK_ENV_VAR = "REPRO_BENCH_QUICK"

#: Opt-in flag for persisting measured datapoints (legacy ``BENCH_*.json``
#: refreshes and unified trajectory appends alike).
RECORD_ENV_VAR = "REPRO_BENCH_RECORD"


def quick_mode() -> bool:
    """Whether the suite runs in the CI's shrunken quick mode."""
    return os.environ.get(QUICK_ENV_VAR, "0") == "1"


def bench_scale(quick, full):
    """``quick`` under ``REPRO_BENCH_QUICK=1``, ``full`` otherwise.

    The single sizing knob for benchmark workloads (trial counts, rounds,
    graph sizes): ``TRIALS = bench_scale(8, 64)``.
    """
    return quick if quick_mode() else full


def record_trajectory(benchmark: str, metrics: dict) -> None:
    """Append one measured datapoint to the unified perf trajectory.

    A no-op unless ``REPRO_BENCH_RECORD=1``, so ordinary benchmark runs
    leave the committed ``BENCH_trajectory.json`` untouched.  The record is
    stamped with the current package version, host fingerprint, and the
    active quick/full mode; ``metrics`` carries the benchmark-specific
    numbers (speedups, wall times, gates).
    """
    if os.environ.get(RECORD_ENV_VAR, "") != "1":
        return
    from repro.observability import append_trajectory, trajectory_record

    append_trajectory(
        trajectory_record(
            benchmark, "quick" if quick_mode() else "full", metrics
        )
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator so benchmark results are reproducible."""
    return np.random.default_rng(2026)
