"""Shared configuration for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's reported artefacts
(Figure 1, Table I, Remark 1, the validation studies) and prints the resulting
rows so the run log doubles as the reproduced table; the ``benchmark`` fixture
additionally records how long the regeneration takes.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator so benchmark results are reproducible."""
    return np.random.default_rng(2026)
