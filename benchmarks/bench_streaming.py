"""Benchmark: O(chunk) memory and dense-competitive throughput for streaming.

The streaming trial engine exists so grid points with ``1e8+`` trials fit
in bounded memory: the dense kernels are driven chunk by chunk through
online accumulators, so peak footprint scales with ``chunk_cells`` — not
with ``trials``.  Two gates pin that promise on the overlap-region anchor
point (``c=4, n=1000, delta=3, nu=0.2``):

* **memory** — a streamed point at ``TRIALS`` trials must peak (measured
  by ``Workspace.high_water_bytes``) at <= 10% of what the dense engine
  would need for the same point: the dense workspace high-water mark
  measured at ``DENSE_TRIALS`` scaled linearly to ``TRIALS``, plus the two
  ``(TRIALS, ROUNDS)`` int64 trace tensors the dense path materialises
  outside the workspace.
* **throughput** — streaming must not buy that memory with a slowdown:
  streamed cells/second must stay within 1.5x of the dense engine's rate
  (in practice chunked execution is cache-friendlier and *faster* at
  scale; the gate guards the regression direction).

Under ``REPRO_BENCH_RECORD=1`` the measured rates, peaks and gate margins
are appended to the unified ``BENCH_trajectory.json`` via
:func:`conftest.record_trajectory`.
"""

from __future__ import annotations

import time

from conftest import bench_scale, record_trajectory
from repro.backend import Workspace
from repro.params import parameters_from_c
from repro.simulation import BatchSimulation, StreamingBatchSimulation

PARAMS = parameters_from_c(c=4.0, n=1_000, delta=3, nu=0.2)
SEED = 2026

#: The streamed workload: ten million trials in full mode — a point the
#: dense engine cannot hold (two ``(1e7, 100)`` int64 tensors alone are
#: 16 GB before any scan scratch).
TRIALS = bench_scale(200_000, 10_000_000)
ROUNDS = 100
#: The execution chunk budget (cells); scaled down in quick mode so the
#: chunking machinery is still exercised by the shrunken workload.
CHUNK_CELLS = bench_scale(400_000, 4_000_000)
#: The dense reference runs at a size the dense engine can actually hold;
#: its footprint is scaled linearly to ``TRIALS`` for the gate.
DENSE_TRIALS = bench_scale(20_000, 200_000)

#: Streamed peak memory must be <= this fraction of the projected dense peak.
MEMORY_GATE = 0.10
#: Streamed throughput must be >= dense throughput divided by this factor.
THROUGHPUT_GATE = 1.5


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def test_streamed_point_is_chunk_bounded_and_dense_competitive():
    streamed_workspace = Workspace()
    simulation = StreamingBatchSimulation(
        PARAMS,
        seed=SEED,
        workspace=streamed_workspace,
        chunk_cells=CHUNK_CELLS,
    )
    streamed, streamed_s = _timed(lambda: simulation.run(TRIALS, ROUNDS))
    streamed_peak = streamed_workspace.high_water_bytes
    streamed_rate = TRIALS * ROUNDS / streamed_s

    dense_workspace = Workspace()
    dense_engine = BatchSimulation(PARAMS, rng=SEED, workspace=dense_workspace)
    dense, dense_s = _timed(lambda: dense_engine.run(DENSE_TRIALS, ROUNDS))
    dense_rate = DENSE_TRIALS * ROUNDS / dense_s
    # Projected dense peak at the streamed trial count: workspace scratch
    # scales linearly with trials, plus the honest/adversary trace tensors
    # the dense path materialises outside the workspace.
    dense_projected = (
        dense_workspace.high_water_bytes * (TRIALS / DENSE_TRIALS)
        + 2 * TRIALS * ROUNDS * 8
    )

    memory_ratio = streamed_peak / dense_projected
    throughput_ratio = dense_rate / streamed_rate

    print(
        f"\nstreamed: {TRIALS:,} trials x {ROUNDS} rounds in {streamed_s:.1f}s "
        f"({streamed_rate / 1e6:.1f} Mcells/s, {streamed.n_chunks} chunks, "
        f"peak {streamed_peak / 1e6:.0f} MB)"
    )
    print(
        f"dense:    {DENSE_TRIALS:,} trials x {ROUNDS} rounds in {dense_s:.1f}s "
        f"({dense_rate / 1e6:.1f} Mcells/s, projected peak at streamed size "
        f"{dense_projected / 1e9:.1f} GB)"
    )
    print(
        f"gates:    memory {memory_ratio:.3f} <= {MEMORY_GATE}, "
        f"throughput slowdown {throughput_ratio:.2f} <= {THROUGHPUT_GATE}"
    )

    # Sanity: the streamed point is a real experiment, not a fast no-op.
    assert streamed.trials == TRIALS
    assert abs(
        streamed.mean_convergence_rate - streamed.theoretical_convergence_rate
    ) < 0.05
    assert abs(dense.summary()["mean_adversary_rate"] - PARAMS.beta) < 0.05

    assert streamed_peak <= MEMORY_GATE * dense_projected, (
        f"streamed peak {streamed_peak / 1e6:.0f} MB exceeds "
        f"{MEMORY_GATE:.0%} of the projected dense peak "
        f"{dense_projected / 1e6:.0f} MB"
    )
    assert streamed_rate >= dense_rate / THROUGHPUT_GATE, (
        f"streamed rate {streamed_rate / 1e6:.1f} Mcells/s is more than "
        f"{THROUGHPUT_GATE}x slower than dense {dense_rate / 1e6:.1f} Mcells/s"
    )

    record_trajectory(
        "streaming",
        {
            "trials": TRIALS,
            "rounds": ROUNDS,
            "chunk_cells": CHUNK_CELLS,
            "dense_trials": DENSE_TRIALS,
            "n_chunks": streamed.n_chunks,
            "streamed_s": streamed_s,
            "streamed_cells_per_s": streamed_rate,
            "streamed_peak_bytes": streamed_peak,
            "dense_s": dense_s,
            "dense_cells_per_s": dense_rate,
            "dense_projected_peak_bytes": dense_projected,
            "memory_ratio": memory_ratio,
            "memory_gate": MEMORY_GATE,
            "throughput_slowdown": throughput_ratio,
            "throughput_gate": THROUGHPUT_GATE,
        },
    )
