"""Benchmark / regeneration of Remark 1 (Inequalities 12-17).

Recomputes the two (delta1, delta2) settings the paper uses at Delta = 1e13 —
the admissible nu-ranges and the multiplicative slack factors of the
simplified bound — and prints them next to the values the paper states.
"""

from __future__ import annotations

import pytest

from repro.analysis import PAPER_SETTINGS, remark1_table, render_table


@pytest.mark.benchmark(group="remark1")
def test_remark1_paper_settings(benchmark):
    """Time the recomputation of the paper's two Remark 1 rows."""
    rows = benchmark(remark1_table)
    assert len(rows) == 2

    printable = []
    for row, paper in zip(rows, PAPER_SETTINGS):
        printable.append(
            {
                "delta1": row.delta1,
                "delta2": row.delta2,
                "nu_low (measured)": row.nu_low,
                "nu_low (paper)": paper["paper_nu_low"],
                "0.5 - nu_high (measured)": row.nu_high_gap,
                "0.5 - nu_high (paper)": paper["paper_nu_high_gap"],
                "slack - 1 (measured)": row.slack_excess,
                "slack - 1 (paper)": paper["paper_slack"],
            }
        )
    print("\nRemark 1 — nu-ranges and slack factors at Delta = 1e13")
    print(render_table(printable))

    # Order-of-magnitude agreement with the paper's stated values.
    assert rows[0].slack_excess == pytest.approx(5e-5, rel=0.2)
    assert rows[1].slack_excess == pytest.approx(2e-3, rel=0.1)


@pytest.mark.benchmark(group="remark1")
def test_remark1_other_delta_scales(benchmark):
    """The same construction at other Delta values (robustness of the remark)."""

    def build():
        return {
            delta: remark1_table(delta=delta)
            for delta in (10**6, 10**9, 10**13, 10**15)
        }

    tables = benchmark(build)
    rows = []
    for delta, table in tables.items():
        for row in table:
            rows.append(
                {
                    "Delta": delta,
                    "delta1": row.delta1,
                    "delta2": row.delta2,
                    "slack - 1": row.slack_excess,
                    "0.5 - nu_high": row.nu_high_gap,
                }
            )
    print("\nRemark 1 slack factors across Delta scales")
    print(render_table(rows))
