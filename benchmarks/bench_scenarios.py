"""Benchmark: the vectorized scenario engine versus the legacy adversarial loop.

The scenario engine executes all trials of an adversarial attack at once as
``(trials,)`` state vectors; the legacy loop builds Python ``Block`` objects
round by round, one trial at a time.  This file times both sides on the same
workload — equal trial counts, equal rounds, the same strategies — asserts
the >= 5x speedup gate from the issue, and prints the attack surface the
batch engine unlocks.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_scale, record_trajectory

from repro.analysis import attack_surface_sweep, render_table
from repro.params import parameters_from_c
from repro.simulation import (
    NakamotoSimulation,
    ScenarioSimulation,
    get_scenario,
    list_scenarios,
    spawn_rngs,
)

TRIALS = bench_scale(16, 32)
ROUNDS = bench_scale(800, 4_000)
#: Inside the attack region so the withholding strategies actually release.
PARAMS = parameters_from_c(c=1.0, n=400, delta=3, nu=0.4)


def _legacy_trials(scenario_name: str, trials: int, rounds: int) -> list:
    scenario = get_scenario(scenario_name)
    results = []
    for rng in spawn_rngs(0, trials):
        results.append(
            NakamotoSimulation(
                PARAMS,
                adversary=scenario.build_adversary(PARAMS.delta),
                rng=rng,
            ).run(rounds)
        )
    return results


@pytest.mark.parametrize("scenario_name", ["private_chain", "selfish_mining"])
def test_scenario_engine_speedup_over_legacy_loop(scenario_name):
    """The scenario engine must beat the legacy adversarial loop by >= 5x.

    Both sides execute ``trials x rounds`` protocol rounds under the same
    attack strategy; the legacy side is the object-based round loop, the
    engine side the (trials,)-vectorized scan.
    """
    start = time.perf_counter()
    legacy_results = _legacy_trials(scenario_name, TRIALS, ROUNDS)
    legacy_seconds = time.perf_counter() - start

    engine_seconds = float("inf")
    result = None
    for repeat in range(3):
        start = time.perf_counter()
        result = ScenarioSimulation(PARAMS, scenario_name, rng=repeat).run(
            TRIALS, ROUNDS
        )
        engine_seconds = min(engine_seconds, time.perf_counter() - start)

    speedup = legacy_seconds / engine_seconds
    print(
        f"\nScenario engine speedup [{scenario_name}] at {TRIALS} trials x "
        f"{ROUNDS} rounds: legacy {legacy_seconds:.3f}s, engine "
        f"{engine_seconds:.4f}s, {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"scenario engine only {speedup:.1f}x faster than the legacy loop"
    )
    # Both sides simulate the same attack: the legacy trials' release
    # activity should be in the same regime as the engine batch's.
    legacy_released = sum(run.adversary_releases > 0 for run in legacy_results)
    assert (legacy_released > 0) == (int(result.releases.sum()) > 0)

    record_trajectory(
        "scenarios",
        {
            "scenario": scenario_name,
            "trials": TRIALS,
            "rounds": ROUNDS,
            "legacy_seconds": legacy_seconds,
            "engine_seconds": engine_seconds,
            "speedup": speedup,
            "gate": 5.0,
        },
    )


@pytest.mark.benchmark(group="scenarios")
@pytest.mark.parametrize("scenario_name", sorted(list_scenarios()))
def test_scenario_engine_throughput(benchmark, scenario_name):
    """Raw engine throughput per registered scenario (trials x rounds per call)."""
    result = benchmark(
        lambda: ScenarioSimulation(PARAMS, scenario_name, rng=0).run(TRIALS, ROUNDS)
    )
    assert result.trials == TRIALS
    assert result.rounds == ROUNDS


@pytest.mark.benchmark(group="scenarios")
def test_attack_surface_sweep_throughput(benchmark):
    """Time the full (scenario, nu, Delta) attack surface and print it."""
    trials = bench_scale(4, 12)
    rounds = bench_scale(600, 3_000)
    rows = benchmark(
        attack_surface_sweep,
        ("private_chain", "selfish_mining"),
        (0.2, 0.35, 0.45),
        (1, 3),
        c=1.0,
        n=400,
        trials=trials,
        rounds=rounds,
        seed=17,
    )
    print("\nAttack surface across (scenario, nu, Delta) at c = 1")
    print(
        render_table(
            [
                {
                    "scenario": row["scenario"],
                    "nu": row["nu"],
                    "delta": row["delta"],
                    "attack predicted": row["attack_predicted"],
                    "success prob": row["attack_success_probability"],
                    "ci95 high": row["attack_success_ci95_high"],
                    "mean deepest fork": row["mean_deepest_fork"],
                    "max deepest fork": row["max_deepest_fork"],
                }
                for row in rows
            ]
        )
    )
    # Deep-attack cells succeed essentially always; the mildest cell is the
    # weakest — the surface must be ordered by adversarial power.
    by_cell = {
        (row["scenario"], row["nu"], row["delta"]): row for row in rows
    }
    strongest = by_cell[("private_chain", 0.45, 1)]
    weakest = by_cell[("private_chain", 0.2, 3)]
    assert (
        strongest["attack_success_probability"]
        >= weakest["attack_success_probability"]
    )
