"""Benchmark: the vectorized gossip kernel versus the per-block reference.

The peer-graph delay model computes every node's gossip delivery radius
once with a min-plus (Floyd–Warshall) front sweep and samples per-block
delays by fancy indexing; the reference implementation re-runs a Python
Dijkstra flood for every single block.  This file times both sides on the
same workload — the same graph family, the same number of blocks, the
same sampled origins — asserts the >= 5x speedup gate from the issue, and
prints the Δ-tightness table the topology subsystem unlocks.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_scale, record_trajectory

from repro.analysis import delta_tightness_sweep, render_table
from repro.params import parameters_from_c
from repro.simulation import (
    BatchSimulation,
    PeerGraphDelayModel,
    PeerGraphTopology,
    reference_draw_delays,
)

TRIALS = bench_scale(8, 16)
ROUNDS = bench_scale(300, 2_000)
NODES = bench_scale(48, 96)
DEGREE = 4


def test_gossip_kernel_speedup_over_per_block_reference():
    """The vectorized draw must beat the per-block Dijkstra loop by >= 5x.

    Both sides sample identical origin streams over a fresh copy of the
    same graph (so neither benefits from a warm distance cache) and produce
    identical delay tensors.
    """
    delta = PeerGraphTopology.random_regular(NODES, DEGREE, rng=7).diameter

    start = time.perf_counter()
    reference = reference_draw_delays(
        PeerGraphTopology.random_regular(NODES, DEGREE, rng=7),
        TRIALS,
        ROUNDS,
        delta,
        np.random.default_rng(0),
    )
    reference_seconds = time.perf_counter() - start

    vectorized = None
    vectorized_seconds = float("inf")
    for _ in range(3):
        model = PeerGraphDelayModel(
            PeerGraphTopology.random_regular(NODES, DEGREE, rng=7)
        )
        start = time.perf_counter()
        vectorized = model.draw_delays(TRIALS, ROUNDS, delta, np.random.default_rng(0))
        vectorized_seconds = min(vectorized_seconds, time.perf_counter() - start)

    speedup = reference_seconds / vectorized_seconds
    print(
        f"\nGossip kernel speedup at {NODES} nodes, {TRIALS} trials x "
        f"{ROUNDS} rounds: reference {reference_seconds:.3f}s, vectorized "
        f"{vectorized_seconds:.4f}s, {speedup:.1f}x"
    )
    assert np.array_equal(vectorized, reference)
    assert speedup >= 5.0, (
        f"vectorized gossip kernel only {speedup:.1f}x faster than the "
        "per-block reference"
    )

    record_trajectory(
        "topology",
        {
            "nodes": NODES,
            "degree": DEGREE,
            "trials": TRIALS,
            "rounds": ROUNDS,
            "reference_seconds": reference_seconds,
            "vectorized_seconds": vectorized_seconds,
            "speedup": speedup,
            "gate": 5.0,
        },
    )


@pytest.mark.benchmark(group="topology")
def test_topology_batch_throughput(benchmark):
    """Raw batch-engine throughput under a peer-graph delay model."""
    params = parameters_from_c(c=4.0, n=1_000, delta=8, nu=0.2)
    model = PeerGraphDelayModel(PeerGraphTopology.random_regular(NODES, DEGREE, rng=3))
    result = benchmark(
        lambda: BatchSimulation(params, rng=0, delay_model=model).run(TRIALS, ROUNDS)
    )
    assert result.trials == TRIALS
    assert result.delay_model == "peer_graph"


@pytest.mark.benchmark(group="topology")
def test_delta_tightness_sweep_throughput(benchmark):
    """Time the Δ-tightness sweep across graph degrees and print the table."""
    trials = bench_scale(4, 12)
    rounds = bench_scale(1_200, 6_000)
    rows = benchmark(
        delta_tightness_sweep,
        (2, 4, 8),
        (0,),
        graph_nodes=32,
        trials=trials,
        rounds=rounds,
        seed=17,
    )
    print("\nDelta tightness across random-regular degrees (c = 4, nu = 0.2)")
    print(
        render_table(
            [
                {
                    "degree": row["degree"],
                    "diameter": row["diameter"],
                    "effective delta": row["effective_delta"],
                    "nominal delta": row["nominal_delta"],
                    "empirical rate": row["empirical_rate"],
                    "predicted (nominal)": row["predicted_rate_nominal"],
                    "predicted (effective)": row["predicted_rate_effective"],
                    "tightness": row["tightness_vs_nominal"],
                }
                for row in rows
            ]
        )
    )
    # Denser gossip delivers faster than the worst case, so the empirical
    # rate must beat the nominal fixed-Delta prediction at high degree.
    by_degree = {row["degree"]: row for row in rows}
    assert by_degree[8]["effective_delta"] <= by_degree[2]["effective_delta"]
    assert (
        by_degree[8]["tightness_vs_nominal"] >= by_degree[2]["tightness_vs_nominal"]
    )
